//! [`SimBatch`]: many concurrent fire forecasts stepped as one batch.
//!
//! The paper's end goal is an operational service running many data-driven
//! fire forecasts at once, not one simulation per process. `SimBatch` is
//! that service layer's execution core: it owns N realized
//! [`Simulation`]s (each a coupled model + state + private workspace) and
//! advances them toward a shared horizon with two cooperating mechanisms:
//!
//! * **Cooperative scheduling** — slots are claimed from a shared atomic
//!   cursor by the ensemble worker pool
//!   (`wildfire_ensemble::pool::parallel_for_each_dynamic_ws`), so cheap
//!   or already-finished fires never pin a worker while another grinds
//!   through an expensive one.
//! * **SoA cross-fire stepping** — slots whose fire solvers are
//!   [`group_compatible`](wildfire_core::CoupledModel) (same grid, fuel
//!   palette, terrain, integrator and CFL configuration) are stepped in
//!   lockstep through [`wildfire_core::step_group_ws`]: every level-set
//!   RHS evaluation is one row-major sweep across the fires of the
//!   unit, sharing one pass over the static kernel planes and filling
//!   the fast-math pow lanes with nodes drawn across fires even on
//!   narrow grids. Compatibility groups larger than `MAX_GROUP` split
//!   into several lockstep units so a unit's working set stays
//!   cache-sized and the pool has more units to balance.
//!
//! **Bitwise contract.** Batched stepping is bit-identical to running
//! every slot alone through [`Simulation::run_until`] — grouping, lane
//! packing and work-stealing are pure schedule changes, never arithmetic
//! changes. The proptest suite in `crates/sim/tests/` pins this, and the
//! single-`Simulation` path itself routes through the same grouped code
//! as a batch of one, so there is exactly one stepping path to trust.
//!
//! ```no_run
//! use wildfire_sim::batch::SimBatch;
//! use wildfire_sim::registry;
//!
//! let mut batch = SimBatch::new(4);
//! for name in [registry::FIG1_FIRELINE, registry::WIND_SHIFT] {
//!     let scenario = registry::by_name(name).unwrap();
//!     batch.push_scenario(&scenario).unwrap();
//! }
//! batch.advance_to(60.0).unwrap();
//! for p in batch.products() {
//!     println!("{}: burned {:.0} m², perimeter {:.0} m", p.name, p.burned_area, p.perimeter_length);
//! }
//! ```

use crate::builder::Simulation;
use crate::scenario::Scenario;
use crate::{Result, SimulationBuilder};
use wildfire_core::{step_group_ws, BatchSlot, StepDiagnostics};
use wildfire_ensemble::pool;
use wildfire_fire::perimeter::perimeter_length;

/// Per-slot rollup of the diagnostics stream a slot produced while the
/// batch advanced — running maxima/counters only, so it composes across
/// repeated [`SimBatch::advance_to`] calls.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct Rollup {
    steps: usize,
    max_spread_rate: f64,
    max_updraft: f64,
    max_surface_wind: f64,
    peak_sensible_power: f64,
    peak_latent_power: f64,
}

impl Rollup {
    fn absorb(&mut self, d: &StepDiagnostics) {
        self.steps += 1;
        self.max_spread_rate = self.max_spread_rate.max(d.max_spread_rate);
        self.max_updraft = self.max_updraft.max(d.max_updraft);
        self.max_surface_wind = self.max_surface_wind.max(d.max_surface_wind);
        self.peak_sensible_power = self.peak_sensible_power.max(d.total_sensible_power);
        self.peak_latent_power = self.peak_latent_power.max(d.total_latent_power);
    }
}

/// One owned simulation inside the batch plus its rollup and its position
/// in the caller's indexing (restored after every advance, since grouping
/// permutes the internal order).
struct Slot {
    sim: Simulation,
    rollup: Rollup,
    original: usize,
}

/// Batch-level products for one slot, as reported by
/// [`SimBatch::products`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlotProducts {
    /// Scenario name of the slot.
    pub name: String,
    /// Slot simulation time (s).
    pub time: f64,
    /// Coupled steps taken since the slot joined the batch.
    pub coupled_steps: usize,
    /// Burned area (m²).
    pub burned_area: f64,
    /// Fire-front perimeter length (m), via the marching-front extractor
    /// in [`wildfire_fire::perimeter`].
    pub perimeter_length: f64,
    /// Largest front spread rate seen by any level-set sub-step (m/s).
    pub max_spread_rate: f64,
    /// Largest updraft seen after any coupled step (m/s).
    pub max_updraft: f64,
    /// Largest near-surface wind speed seen after any coupled step (m/s).
    pub max_surface_wind: f64,
    /// Peak domain-integrated sensible heat release (W).
    pub peak_sensible_power: f64,
    /// Peak domain-integrated latent heat release (W).
    pub peak_latent_power: f64,
}

/// Upper bound on the number of fires stepped as one lockstep unit. Larger
/// compatibility groups are split into chunks of this size before being
/// handed to the pool: the bound keeps a unit's combined ψ/workspace
/// footprint cache-sized (lockstep rotation across many fires is a
/// measurable per-step cost) while staying wide enough to fill the
/// cross-fire pow lanes on narrow grids.
const MAX_GROUP: usize = 4;

/// A batch of concurrent fire forecasts; see the [module docs](self).
pub struct SimBatch {
    slots: Vec<Slot>,
    threads: usize,
}

impl SimBatch {
    /// An empty batch that will step its slots on up to `threads` workers
    /// (clamped to at least one; a value of 1 runs inline).
    pub fn new(threads: usize) -> Self {
        SimBatch {
            slots: Vec::new(),
            threads: threads.max(1),
        }
    }

    /// Adds a realized simulation; returns its stable slot index.
    pub fn push(&mut self, sim: Simulation) -> usize {
        let original = self.slots.len();
        self.slots.push(Slot {
            sim,
            rollup: Rollup::default(),
            original,
        });
        original
    }

    /// Builds and adds a simulation from a scenario; returns its stable
    /// slot index.
    ///
    /// # Errors
    /// Propagates [`SimulationBuilder::build`] failures.
    pub fn push_scenario(&mut self, scenario: &Scenario) -> Result<usize> {
        let sim = SimulationBuilder::from_scenario(scenario.clone()).build()?;
        Ok(self.push(sim))
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the batch holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot's simulation (indices are stable across advances).
    pub fn simulation(&self, slot: usize) -> &Simulation {
        &self.slots[slot].sim
    }

    /// Mutable access to a slot's simulation. Mutating model configuration
    /// mid-batch is allowed — grouping is re-derived on every
    /// [`SimBatch::advance_to`] call.
    pub fn simulation_mut(&mut self, slot: usize) -> &mut Simulation {
        &mut self.slots[slot].sim
    }

    /// Advances every slot to `horizon` (slots already past it are left
    /// untouched). Compatible slots step as SoA groups in lockstep; groups
    /// (and incompatible singletons) are distributed over the worker pool
    /// by the dynamic work-stealing scheduler. Results are bit-identical
    /// to advancing each slot alone, for every thread count.
    ///
    /// # Errors
    /// The first failing slot's error, with the batch left partially
    /// advanced (failed groups stop at the failing step; other groups
    /// complete).
    pub fn advance_to(&mut self, horizon: f64) -> Result<()> {
        if self.slots.is_empty() {
            return Ok(());
        }
        // Greedy grouping: a slot joins the first group whose
        // representative has a bitwise-compatible fire solver, the same
        // reference dt, and the same clock (lockstep requirement). O(N²)
        // in the number of groups, which is tiny.
        let mut order: Vec<Vec<Slot>> = Vec::new();
        for slot in self.slots.drain(..) {
            let found = order.iter_mut().find(|group| {
                let rep = &group[0].sim;
                rep.model.fire.group_compatible(&slot.sim.model.fire)
                    && rep.dt.to_bits() == slot.sim.dt.to_bits()
                    && rep.time().to_bits() == slot.sim.time().to_bits()
            });
            match found {
                Some(group) => group.push(slot),
                None => order.push(vec![slot]),
            }
        }
        // Split every compatibility group into lockstep units of at most
        // MAX_GROUP slots; workers steal units from the shared cursor. The
        // split bounds a unit's cache working set (a 64-fire lockstep
        // round cycles 64 ψ/workspace sets through cache every step and
        // measurably loses to independent stepping) and hands the pool
        // more units to balance. Grouping is a pure schedule choice under
        // the bitwise contract, so the split never changes results. The
        // unit carries its outcome so the pool closure stays infallible.
        let mut units: Vec<(Vec<Slot>, Result<()>)> = Vec::new();
        for group in order {
            let mut rest = group;
            while rest.len() > MAX_GROUP {
                let tail = rest.split_off(MAX_GROUP);
                units.push((rest, Ok(())));
                rest = tail;
            }
            units.push((rest, Ok(())));
        }
        let mut worker_scratch = vec![(); self.threads];
        pool::parallel_for_each_dynamic_ws(&mut units, &mut worker_scratch, |_, unit, ()| {
            unit.1 = advance_unit(&mut unit.0, horizon);
        });
        let mut first_err = Ok(());
        for (group, outcome) in units {
            if first_err.is_ok() {
                if let Err(e) = outcome {
                    first_err = Err(e);
                }
            }
            self.slots.extend(group);
        }
        // Grouping permuted the slots; restore the caller's indexing.
        self.slots.sort_by_key(|s| s.original);
        first_err
    }

    /// The batch product table, in slot order: per-fire burned area,
    /// perimeter length, and the diagnostics rollups accumulated across
    /// every advance so far.
    pub fn products(&self) -> Vec<SlotProducts> {
        self.slots
            .iter()
            .map(|s| SlotProducts {
                name: s.sim.scenario.name.clone(),
                time: s.sim.time(),
                coupled_steps: s.rollup.steps,
                burned_area: s.sim.state.fire.burned_area(),
                perimeter_length: perimeter_length(&s.sim.state.fire.psi),
                max_spread_rate: s.rollup.max_spread_rate,
                max_updraft: s.rollup.max_updraft,
                max_surface_wind: s.rollup.max_surface_wind,
                peak_sensible_power: s.rollup.peak_sensible_power,
                peak_latent_power: s.rollup.peak_latent_power,
            })
            .collect()
    }
}

/// Advances one compatibility group to the horizon. A singleton runs the
/// plain [`Simulation::run_until`] loop (which itself routes through the
/// grouped core path as a batch of one); larger groups step in lockstep
/// rounds through [`wildfire_core::step_group_ws`], applying each slot's
/// wind-shift schedule at the same times the independent loop would.
fn advance_unit(slots: &mut [Slot], horizon: f64) -> Result<()> {
    if let [slot] = slots {
        let rollup = &mut slot.rollup;
        return slot.sim.run_until(horizon, |_, diag| rollup.absorb(diag));
    }
    let mut diags = vec![StepDiagnostics::default(); slots.len()];
    while slots[0].sim.time() < horizon - 1e-9 {
        // All slots share dt and clock (the grouping key), so one round
        // steps everyone by the same clamped dt — exactly the step sizes
        // `run_until` would choose slot by slot.
        let time = slots[0].sim.time();
        let dt = slots[0].sim.dt.min(horizon - time);
        for slot in slots.iter_mut() {
            slot.sim.apply_due_shifts(time);
        }
        let mut group: Vec<BatchSlot<'_>> = slots
            .iter_mut()
            .map(|slot| BatchSlot {
                model: &slot.sim.model,
                state: &mut slot.sim.state,
                ws: &mut slot.sim.workspace,
            })
            .collect();
        step_group_ws(&mut group, dt, &mut diags).map_err(crate::SimError::Model)?;
        drop(group);
        for (slot, diag) in slots.iter_mut().zip(diags.iter()) {
            slot.rollup.absorb(diag);
        }
    }
    Ok(())
}
