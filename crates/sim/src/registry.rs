//! Named, ready-to-run scenarios. Each entry is a complete [`Scenario`]
//! that examples, harnesses, benches, and tests share by name instead of
//! re-stating geometry.

use crate::scenario::{DomainSpec, FuelPatch, FuelSpec, Scenario, WindShift, WindSpec};
use wildfire_fire::IgnitionShape;
use wildfire_fuel::FuelCategory;
use wildfire_obs::{ObsStreamKind, ObsStreamSpec};

/// Fig. 1 fireline of the paper: two line ignitions and one circle that
/// merge while coupling to the atmosphere.
pub const FIG1_FIRELINE: &str = "fig1-fireline";
/// Fig. 1 geometry with coupling severed — the "empirical spread model
/// alone" baseline of the figure's caption.
pub const UNCOUPLED_BASELINE: &str = "uncoupled-baseline";
/// One circular ignition at the domain center of the small ensemble domain.
pub const CIRCLE_IGNITION: &str = "circle-ignition";
/// Three separate circular spot fires placed to merge under wind.
pub const MULTI_IGNITION_MERGE: &str = "multi-ignition-merge";
/// A circular fire whose ambient wind veers 90° mid-run (frontal passage).
pub const WIND_SHIFT: &str = "wind-shift";
/// Grass plain with a chaparral stand and a timber-litter fuel break.
pub const HETEROGENEOUS_FUEL: &str = "heterogeneous-fuel";
/// Tall-grass circle burn framed for the Fig. 3 infrared scene.
pub const GRASS_SCENE: &str = "grass-scene";
/// The Fig. 2 data-driven loop: a circle burn with a declared observation
/// pool — gridded ψ every 60 s plus a 2×2 weather-station network every
/// 30 s — for identical-twin assimilation cycles.
pub const FIG2_DATA_DRIVEN: &str = "fig2-data-driven";

/// The paper's Fig. 1 ignition geometry, shared by several scenarios.
fn fig1_ignitions() -> Vec<IgnitionShape> {
    vec![
        IgnitionShape::Line {
            start: (150.0, 210.0),
            end: (150.0, 330.0),
            half_width: 6.0,
        },
        IgnitionShape::Line {
            start: (210.0, 150.0),
            end: (330.0, 150.0),
            half_width: 6.0,
        },
        IgnitionShape::Circle {
            center: (330.0, 330.0),
            radius: 25.0,
        },
    ]
}

fn scenario(
    name: &str,
    description: &str,
    domain: DomainSpec,
    fuel: FuelSpec,
    wind: WindSpec,
    ignitions: Vec<IgnitionShape>,
    coupled: bool,
) -> Scenario {
    Scenario {
        name: name.to_string(),
        description: description.to_string(),
        domain,
        fuel,
        wind,
        ignitions,
        ignition_time: 0.0,
        coupled,
        fast_math: false,
        pressure_warm_start: false,
        dt: 0.5,
        streams: Vec::new(),
    }
}

/// All registry scenarios, cheapest-to-build first.
pub fn all() -> Vec<Scenario> {
    vec![
        scenario(
            CIRCLE_IGNITION,
            "single 25 m circle at the center of the small ensemble domain",
            DomainSpec::SMALL,
            FuelSpec::Uniform(FuelCategory::ShortGrass),
            WindSpec::steady(3.0, 0.0),
            vec![IgnitionShape::Circle {
                center: (240.0, 240.0),
                radius: 25.0,
            }],
            true,
        ),
        scenario(
            FIG1_FIRELINE,
            "paper Fig. 1: two line ignitions and a circle merging under two-way coupling",
            DomainSpec::PAPER,
            FuelSpec::Uniform(FuelCategory::ShortGrass),
            WindSpec::steady(3.0, 0.0),
            fig1_ignitions(),
            true,
        ),
        scenario(
            UNCOUPLED_BASELINE,
            "Fig. 1 geometry with coupling severed (empirical spread model alone)",
            DomainSpec::PAPER,
            FuelSpec::Uniform(FuelCategory::ShortGrass),
            WindSpec::steady(3.0, 0.0),
            fig1_ignitions(),
            false,
        ),
        scenario(
            MULTI_IGNITION_MERGE,
            "three spot fires placed crosswind that merge into one perimeter",
            DomainSpec::SMALL,
            FuelSpec::Uniform(FuelCategory::ShortGrass),
            WindSpec::steady(4.0, 0.0),
            vec![
                IgnitionShape::Circle {
                    center: (150.0, 150.0),
                    radius: 18.0,
                },
                IgnitionShape::Circle {
                    center: (150.0, 240.0),
                    radius: 18.0,
                },
                IgnitionShape::Circle {
                    center: (150.0, 330.0),
                    radius: 18.0,
                },
            ],
            true,
        ),
        Scenario {
            name: WIND_SHIFT.to_string(),
            description: "circular burn whose ambient wind veers 90 degrees at t = 60 s"
                .to_string(),
            domain: DomainSpec::SMALL,
            fuel: FuelSpec::Uniform(FuelCategory::ShortGrass),
            wind: WindSpec {
                ambient: (4.0, 0.0),
                shifts: vec![WindShift {
                    at: 60.0,
                    to: (0.0, 4.0),
                }],
            },
            ignitions: vec![IgnitionShape::Circle {
                center: (180.0, 240.0),
                radius: 25.0,
            }],
            ignition_time: 0.0,
            coupled: true,
            fast_math: false,
            pressure_warm_start: false,
            dt: 0.5,
            streams: Vec::new(),
        },
        scenario(
            HETEROGENEOUS_FUEL,
            "grass plain with a chaparral stand downwind and a timber-litter fuel break",
            DomainSpec::PAPER,
            FuelSpec::Patches {
                base: FuelCategory::ShortGrass,
                patches: vec![
                    FuelPatch {
                        rect: (330.0, 120.0, 540.0, 480.0),
                        fuel: FuelCategory::Chaparral,
                    },
                    FuelPatch {
                        rect: (270.0, 0.0, 300.0, 540.0),
                        fuel: FuelCategory::TimberLitter,
                    },
                ],
            },
            WindSpec::steady(3.0, 0.0),
            vec![IgnitionShape::Circle {
                center: (120.0, 300.0),
                radius: 25.0,
            }],
            true,
        ),
        scenario(
            GRASS_SCENE,
            "tall-grass circle burn framed for the Fig. 3 synthetic infrared scene",
            DomainSpec::PAPER,
            FuelSpec::Uniform(FuelCategory::TallGrass),
            WindSpec::steady(4.0, 0.0),
            vec![IgnitionShape::Circle {
                center: (300.0, 300.0),
                radius: 40.0,
            }],
            true,
        ),
        scenario(
            FIG2_DATA_DRIVEN,
            "Fig. 2 loop: circle burn with a declared data pool (gridded psi + station network)",
            DomainSpec::SMALL,
            FuelSpec::Uniform(FuelCategory::ShortGrass),
            WindSpec::steady(2.0, 1.0),
            vec![IgnitionShape::Circle {
                center: (240.0, 240.0),
                radius: 25.0,
            }],
            true,
        )
        .with_stream(ObsStreamSpec::new(
            ObsStreamKind::StridedPsi {
                stride: 5,
                sigma: 1.0,
            },
            60.0,
            60.0,
        ))
        .with_stream(ObsStreamSpec::new(
            ObsStreamKind::Stations {
                locations: vec![
                    (150.0, 150.0),
                    (330.0, 150.0),
                    (150.0, 330.0),
                    (330.0, 330.0),
                ],
                theta0: 300.0,
                sigma: 1.0,
            },
            30.0,
            30.0,
        )),
    ]
}

/// Looks a scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

/// The names of every registry scenario, in [`all`] order.
pub fn names() -> Vec<String> {
    all().into_iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FuelSpec;

    #[test]
    fn registry_has_at_least_six_unique_scenarios() {
        let names = names();
        assert!(names.len() >= 6, "registry has {} scenarios", names.len());
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "names must be unique");
    }

    #[test]
    fn every_registry_scenario_builds_and_steps() {
        for scn in all() {
            let mut sim = scn
                .build()
                .unwrap_or_else(|e| panic!("scenario {} failed to build: {e}", scn.name));
            sim.step()
                .unwrap_or_else(|e| panic!("scenario {} failed to step: {e:?}", scn.name));
            assert!(
                sim.state.fire.burned_area() > 0.0,
                "scenario {} ignited nothing",
                scn.name
            );
        }
    }

    #[test]
    fn by_name_roundtrips_and_rejects_unknown() {
        for name in names() {
            assert_eq!(by_name(&name).expect("present").name, name);
        }
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn fig1_and_baseline_differ_only_in_coupling() {
        let fig1 = by_name(FIG1_FIRELINE).expect("fig1");
        let base = by_name(UNCOUPLED_BASELINE).expect("baseline");
        assert!(fig1.coupled && !base.coupled);
        assert_eq!(fig1.ignitions, base.ignitions);
        assert_eq!(fig1.domain, base.domain);
    }

    #[test]
    fn heterogeneous_fuel_scenario_is_heterogeneous() {
        let scn = by_name(HETEROGENEOUS_FUEL).expect("present");
        assert!(scn.fuel.is_heterogeneous());
        match &scn.fuel {
            FuelSpec::Patches { patches, .. } => assert!(patches.len() >= 2),
            FuelSpec::Uniform(_) => panic!("expected patches"),
        }
    }

    #[test]
    fn wind_shift_scenario_changes_wind_mid_run() {
        let scn = by_name(WIND_SHIFT).expect("present");
        assert!(!scn.wind.shifts.is_empty());
        let mut sim = scn.build().expect("builds");
        let before = sim.model.atmos.params.ambient_wind;
        // Jump the clock past the shift time cheaply: step a few times with
        // a large dt (components sub-step internally to stay stable).
        while sim.time() < 61.0 {
            sim.step_by(10.0).expect("step");
        }
        let after = sim.model.atmos.params.ambient_wind;
        assert_ne!(before, after, "ambient wind must shift mid-run");
    }

    #[test]
    fn data_driven_scenario_declares_a_heterogeneous_pool() {
        let scn = by_name(FIG2_DATA_DRIVEN).expect("present");
        assert_eq!(scn.streams.len(), 2, "gridded psi + station network");
        let tl = scn.timeline(120.0);
        assert_eq!(tl.analysis_times(), vec![30.0, 60.0, 90.0, 120.0]);
        // Both streams report at the shared instants — that is what makes
        // the packed ObsSet heterogeneous there.
        assert_eq!(tl.streams_due_at(60.0).count(), 2);
        assert_eq!(tl.streams_due_at(30.0).count(), 1);
        // Other registry scenarios stay forward-only.
        assert!(by_name(FIG1_FIRELINE).expect("fig1").streams.is_empty());
    }

    #[test]
    fn multi_ignition_merge_starts_with_three_components() {
        let scn = by_name(MULTI_IGNITION_MERGE).expect("present");
        let sim = scn.build().expect("builds");
        let comps = wildfire_fire::perimeter::burning_components(&sim.state.fire.psi);
        assert_eq!(comps, 3, "three separate spot fires at t = 0");
    }
}
