//! [`SimulationBuilder`]: fluent construction of coupled models from
//! [`Scenario`] parts, and [`Simulation`]: a model + state pair that applies
//! the scenario's wind-shift schedule while stepping.

use crate::scenario::{DomainSpec, FuelPatch, FuelSpec, Scenario, WindShift, WindSpec};
use crate::{Result, SimError};
use wildfire_atmos::AtmosParams;
use wildfire_core::{CoupledModel, CoupledState, CoupledWorkspace, StepDiagnostics};
use wildfire_fire::{FireMesh, FuelMap, IgnitionShape};
use wildfire_fuel::{FuelCategory, FuelModel};
use wildfire_obs::{CoupledSnapshot, Snapshot};

/// Fluent builder over a [`Scenario`]. Starts from a neutral default
/// (paper domain, uniform short grass, light westerly, one center circle)
/// so call sites only state what differs.
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    scenario: Scenario,
    explicit_ignitions: bool,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulationBuilder {
    /// A neutral starting scenario; see type-level docs.
    pub fn new() -> Self {
        let domain = DomainSpec::PAPER;
        let center = domain.center();
        SimulationBuilder {
            scenario: Scenario {
                name: "custom".to_string(),
                description: "builder-defined scenario".to_string(),
                domain,
                fuel: FuelSpec::Uniform(FuelCategory::ShortGrass),
                wind: WindSpec::steady(3.0, 0.0),
                ignitions: vec![IgnitionShape::Circle {
                    center,
                    radius: 25.0,
                }],
                ignition_time: 0.0,
                coupled: true,
                fast_math: false,
                pressure_warm_start: false,
                dt: 0.5,
                streams: Vec::new(),
            },
            explicit_ignitions: false,
        }
    }

    /// Starts from an existing scenario (registry entry or hand-built).
    pub fn from_scenario(scenario: Scenario) -> Self {
        SimulationBuilder {
            scenario,
            explicit_ignitions: true,
        }
    }

    /// Names the scenario (shows up in diagnostics).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.scenario.name = name.into();
        self
    }

    /// Sets the domain discretization.
    pub fn domain(mut self, domain: DomainSpec) -> Self {
        self.scenario.domain = domain;
        self
    }

    /// Sets the fire-mesh refinement ratio.
    pub fn refinement(mut self, refinement: usize) -> Self {
        self.scenario.domain.refinement = refinement;
        self
    }

    /// Sets the initial ambient wind (m/s).
    pub fn ambient_wind(mut self, u: f64, v: f64) -> Self {
        self.scenario.wind.ambient = (u, v);
        self
    }

    /// Schedules a mid-run ambient-wind shift.
    pub fn wind_shift(mut self, at: f64, to: (f64, f64)) -> Self {
        self.scenario.wind.shifts.push(WindShift { at, to });
        self
    }

    /// Sets the base fuel category (clears patches).
    pub fn fuel(mut self, cat: FuelCategory) -> Self {
        self.scenario.fuel = FuelSpec::Uniform(cat);
        self
    }

    /// Paints a rectangular fuel patch `(x0, y0, x1, y1)` over the base.
    pub fn fuel_patch(mut self, rect: (f64, f64, f64, f64), fuel: FuelCategory) -> Self {
        self.scenario.fuel = match self.scenario.fuel {
            FuelSpec::Uniform(base) => FuelSpec::Patches {
                base,
                patches: vec![FuelPatch { rect, fuel }],
            },
            FuelSpec::Patches { base, mut patches } => {
                patches.push(FuelPatch { rect, fuel });
                FuelSpec::Patches { base, patches }
            }
        };
        self
    }

    /// Adds an ignition shape. The first call replaces the default center
    /// circle; later calls accumulate.
    pub fn ignite(mut self, shape: IgnitionShape) -> Self {
        if self.explicit_ignitions {
            self.scenario.ignitions.push(shape);
        } else {
            self.scenario.ignitions = vec![shape];
            self.explicit_ignitions = true;
        }
        self
    }

    /// Replaces the whole ignition set.
    pub fn ignitions(mut self, shapes: Vec<IgnitionShape>) -> Self {
        self.scenario.ignitions = shapes;
        self.explicit_ignitions = true;
        self
    }

    /// Sets the ignition time (s).
    pub fn ignition_time(mut self, time: f64) -> Self {
        self.scenario.ignition_time = time;
        self
    }

    /// Toggles two-way coupling.
    pub fn coupled(mut self, coupled: bool) -> Self {
        self.scenario.coupled = coupled;
        self
    }

    /// Toggles fast-math spread-rate evaluation (see
    /// [`Scenario::fast_math`]). Off by default.
    pub fn fast_math(mut self, fast_math: bool) -> Self {
        self.scenario.fast_math = fast_math;
        self
    }

    /// Toggles warm-started pressure projection (see
    /// [`Scenario::pressure_warm_start`]). Off by default.
    pub fn warm_start(mut self, warm: bool) -> Self {
        self.scenario.pressure_warm_start = warm;
        self
    }

    /// Sets the reference coupled step (s).
    pub fn dt(mut self, dt: f64) -> Self {
        self.scenario.dt = dt;
        self
    }

    /// Declares an observation data stream (instrument + cadence) for the
    /// scenario's real-data pool.
    pub fn observe(mut self, stream: wildfire_obs::ObsStreamSpec) -> Self {
        self.scenario.streams.push(stream);
        self
    }

    /// The scenario assembled so far.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Consumes the builder, returning the assembled [`Scenario`] without
    /// realizing model objects.
    pub fn into_scenario(self) -> Scenario {
        self.scenario
    }

    /// Builds only the coupled model (no ignition).
    ///
    /// # Errors
    /// [`SimError::Scenario`] for malformed descriptors,
    /// [`SimError::Model`] when the coupled model rejects the configuration.
    pub fn build_model(&self) -> Result<CoupledModel> {
        let s = &self.scenario;
        if s.dt <= 0.0 {
            return Err(SimError::Scenario("dt must be positive"));
        }
        let atmos_grid = s.domain.atmos_grid();
        let params = AtmosParams {
            ambient_wind: s.wind.ambient,
            pressure_warm_start: s.pressure_warm_start,
            ..Default::default()
        };
        let mut model = match &s.fuel {
            FuelSpec::Uniform(cat) => {
                CoupledModel::new(atmos_grid, params, *cat, s.domain.refinement)?
            }
            FuelSpec::Patches { base, patches } => {
                let fire_grid = CoupledModel::fire_grid_for(&atmos_grid, s.domain.refinement)?;
                let mut map = FuelMap::uniform_category(fire_grid, *base);
                for p in patches {
                    let idx = map.add_fuel(FuelModel::for_category(p.fuel));
                    let (x0, y0, x1, y1) = p.rect;
                    map.paint_rect(x0, y0, x1, y1, idx)
                        .map_err(|_| SimError::Scenario("fuel patch painting failed"))?;
                }
                let mesh = FireMesh::new(
                    fire_grid,
                    map,
                    wildfire_grid::Field2::filled(fire_grid, 0.0),
                )
                .map_err(|_| SimError::Scenario("fire mesh construction failed"))?;
                CoupledModel::with_fire_mesh(atmos_grid, params, mesh)?
            }
        };
        model.coupled = s.coupled;
        if s.fast_math {
            model.fire.set_fast_math(true);
        }
        Ok(model)
    }

    /// Builds the full [`Simulation`]: model, ignited state, and the
    /// wind-shift schedule.
    ///
    /// # Errors
    /// As [`SimulationBuilder::build_model`], plus
    /// [`SimError::Scenario`] when the ignition set is empty.
    pub fn build(self) -> Result<Simulation> {
        if self.scenario.ignitions.is_empty() {
            return Err(SimError::Scenario("scenario has no ignition shapes"));
        }
        let model = self.build_model()?;
        let s = self.scenario;
        let state = model.ignite(&s.ignitions, s.ignition_time);
        let mut shifts = s.wind.shifts.clone();
        shifts.sort_by(|a, b| a.at.total_cmp(&b.at));
        Ok(Simulation {
            model,
            state,
            dt: s.dt,
            shifts,
            next_shift: 0,
            scenario: s,
            workspace: CoupledWorkspace::new(),
        })
    }
}

/// A realized scenario: coupled model + ignited state + forcing schedule.
///
/// Stepping through [`Simulation::step`] / [`Simulation::run_until`] applies
/// the scenario's scheduled wind shifts at the right simulation times;
/// callers that need the raw components can take `model` and `state` apart
/// and drive them directly (losing the schedule).
#[derive(Debug, Clone)]
pub struct Simulation {
    /// The coupled fire–atmosphere model.
    pub model: CoupledModel,
    /// The evolving joint state.
    pub state: CoupledState,
    /// Reference coupled step (s).
    pub dt: f64,
    /// The scenario this simulation was built from.
    pub scenario: Scenario,
    /// Reusable stepping scratch: every [`Simulation::step`] goes through
    /// the allocation-free [`CoupledModel::step_ws`] path, so long runs
    /// perform no steady-state heap allocation.
    pub workspace: CoupledWorkspace,
    shifts: Vec<WindShift>,
    next_shift: usize,
}

impl Simulation {
    /// Current simulation time (s).
    pub fn time(&self) -> f64 {
        self.state.time()
    }

    /// Applies every wind shift scheduled at or before `time`. Crate-visible
    /// so the batched driver ([`crate::batch::SimBatch`]) can honor each
    /// slot's schedule while stepping groups in lockstep.
    pub(crate) fn apply_due_shifts(&mut self, time: f64) {
        while self.next_shift < self.shifts.len() && self.shifts[self.next_shift].at <= time {
            self.model.atmos.params.ambient_wind = self.shifts[self.next_shift].to;
            self.next_shift += 1;
        }
    }

    /// One coupled step of the scenario's reference dt.
    ///
    /// # Errors
    /// Propagates coupled-model step failures.
    pub fn step(&mut self) -> Result<StepDiagnostics> {
        self.step_by(self.dt)
    }

    /// One coupled step of an explicit size (s).
    ///
    /// # Errors
    /// Propagates coupled-model step failures.
    pub fn step_by(&mut self, dt: f64) -> Result<StepDiagnostics> {
        self.apply_due_shifts(self.time());
        let diag = self
            .model
            .step_ws(&mut self.state, dt, &mut self.workspace)?;
        Ok(diag)
    }

    /// Runs to `t_end`, invoking `on_step` after every step. The final step
    /// is clamped so the state lands exactly on `t_end` (same contract as
    /// `CoupledModel::run`), even when `t_end` is not a multiple of the
    /// scenario dt.
    ///
    /// # Errors
    /// Propagates coupled-model step failures.
    pub fn run_until<F>(&mut self, t_end: f64, mut on_step: F) -> Result<()>
    where
        F: FnMut(&CoupledState, &StepDiagnostics),
    {
        while self.time() < t_end - 1e-9 {
            let dt = self.dt.min(t_end - self.time());
            let diag = self.step_by(dt)?;
            on_step(&self.state, &diag);
        }
        Ok(())
    }

    /// Captures the full simulation into `snap`: the coupled state, the
    /// warm-start pressure carry-over, the reference dt, the wind-shift
    /// cursor and the (possibly shifted) current ambient wind, plus the
    /// [`Scenario::fingerprint`] so the checkpoint refuses to restore into
    /// a simulation built from a different scenario. Allocation-free once
    /// `snap` is warm.
    pub fn snapshot_into(&self, snap: &mut Snapshot) {
        self.model
            .snapshot_into(&self.state, Some(&self.workspace), snap);
        snap.put_scalar("sim/dt", self.dt);
        snap.put_scalar("sim/next_shift", self.next_shift as f64);
        let (u, v) = self.model.atmos.params.ambient_wind;
        snap.put_slice("sim/ambient_wind", &[u, v]);
        snap.put_u64("sim/scenario_fp", self.scenario.fingerprint());
    }

    /// Restores this simulation from a checkpoint taken by
    /// [`Simulation::snapshot_into`]. After a successful restore,
    /// continuing the run reproduces the uninterrupted original bit for
    /// bit — including pending wind shifts and (when enabled) the
    /// warm-started pressure projection.
    ///
    /// # Errors
    /// [`SimError::Snapshot`] when records are missing or malformed, or
    /// when the checkpoint's scenario fingerprint differs from this
    /// simulation's.
    pub fn restore_from(&mut self, snap: &Snapshot) -> Result<()> {
        let snap_err = |e: wildfire_obs::ObsError| SimError::Snapshot(e.to_string());
        let fp = snap.get_u64("sim/scenario_fp").map_err(snap_err)?;
        if fp != self.scenario.fingerprint() {
            return Err(SimError::Snapshot(
                "checkpoint was taken from a different scenario".to_string(),
            ));
        }
        let next_shift = snap.get_scalar("sim/next_shift").map_err(snap_err)? as usize;
        if next_shift > self.shifts.len() {
            return Err(SimError::Snapshot(
                "wind-shift cursor out of range".to_string(),
            ));
        }
        let wind = snap.get("sim/ambient_wind").map_err(snap_err)?;
        if wind.len() != 2 {
            return Err(SimError::Snapshot(
                "sim/ambient_wind must hold two values".to_string(),
            ));
        }
        self.model
            .restore_from(&mut self.state, Some(&mut self.workspace), snap)
            .map_err(snap_err)?;
        self.dt = snap.get_scalar("sim/dt").map_err(snap_err)?;
        self.next_shift = next_shift;
        self.model.atmos.params.ambient_wind = (wind[0], wind[1]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wildfire_fire::IgnitionShape;
    use wildfire_fuel::FuelCategory;

    #[test]
    fn default_builder_builds_and_burns() {
        let mut sim = SimulationBuilder::new()
            .domain(DomainSpec::SMALL)
            .build()
            .expect("default scenario builds");
        assert!(sim.state.fire.burned_area() > 0.0);
        sim.run_until(2.0, |_, _| {}).expect("short run");
        assert!(sim.time() >= 2.0);
    }

    #[test]
    fn first_ignite_replaces_default_then_accumulates() {
        let b = SimulationBuilder::new()
            .ignite(IgnitionShape::Circle {
                center: (100.0, 100.0),
                radius: 10.0,
            })
            .ignite(IgnitionShape::Circle {
                center: (200.0, 200.0),
                radius: 10.0,
            });
        assert_eq!(b.scenario().ignitions.len(), 2);
    }

    #[test]
    fn wind_shift_schedule_applies_in_order() {
        let mut sim = SimulationBuilder::new()
            .domain(DomainSpec::SMALL)
            .ambient_wind(5.0, 0.0)
            .wind_shift(1.0, (0.0, 5.0))
            .wind_shift(0.5, (2.0, 2.0))
            .coupled(false)
            .build()
            .expect("builds");
        assert_eq!(sim.model.atmos.params.ambient_wind, (5.0, 0.0));
        sim.run_until(0.9, |_, _| {}).expect("run");
        // t=0.5 shift fired, t=1.0 not yet.
        assert_eq!(sim.model.atmos.params.ambient_wind, (2.0, 2.0));
        sim.run_until(1.6, |_, _| {}).expect("run");
        assert_eq!(sim.model.atmos.params.ambient_wind, (0.0, 5.0));
    }

    #[test]
    fn fuel_patches_paint_heterogeneous_mesh() {
        let sim = SimulationBuilder::new()
            .domain(DomainSpec::SMALL)
            .fuel(FuelCategory::ShortGrass)
            .fuel_patch((0.0, 0.0, 120.0, 120.0), FuelCategory::Chaparral)
            .build()
            .expect("builds");
        let inside = sim.model.fire.mesh().fuel.at(0, 0);
        let g = sim.model.fire_grid;
        let outside = sim.model.fire.mesh().fuel.at(g.nx - 1, g.ny - 1);
        assert_ne!(
            inside.max_spread, outside.max_spread,
            "patch must change the fuel"
        );
    }

    #[test]
    fn run_until_lands_exactly_on_t_end() {
        let mut sim = SimulationBuilder::new()
            .domain(DomainSpec::SMALL)
            .coupled(false)
            .build()
            .expect("builds");
        // 1.3 s is not a multiple of the 0.5 s scenario dt: the final step
        // must clamp rather than overshoot to 1.5 s.
        sim.run_until(1.3, |_, _| {}).expect("run");
        assert!(
            (sim.time() - 1.3).abs() < 1e-9,
            "time {} != requested 1.3",
            sim.time()
        );
    }

    #[test]
    fn default_ignition_sits_at_the_physical_domain_center() {
        let b = SimulationBuilder::new();
        let IgnitionShape::Circle { center, .. } = b.scenario().ignitions[0] else {
            panic!("default ignition must be a circle");
        };
        assert_eq!(center, (300.0, 300.0), "PAPER domain center is (300, 300)");
    }

    #[test]
    fn empty_ignitions_rejected() {
        let err = SimulationBuilder::new().ignitions(Vec::new()).build();
        assert!(err.is_err());
    }

    #[test]
    fn nonpositive_dt_rejected() {
        let err = SimulationBuilder::new().dt(0.0).build();
        assert!(err.is_err());
    }
}
