//! Golden pins for the `SimBatch` product table.
//!
//! A 4-slot mixed-registry batch — the Fig. 1 fireline, the mid-run wind
//! shift, the heterogeneous fuel map, and the uncoupled baseline —
//! advanced to t = 20 s must reproduce the burned-area and
//! perimeter-length products recorded here to 1e-9 (relative). The batch
//! deliberately mixes domains (PAPER and SMALL), palettes, and coupling
//! modes, so it exercises multi-group scheduling: fig1 and the baseline
//! share one SoA group, the other two run as singleton groups.
//!
//! These pins complement the bitwise proptest suite: the proptests prove
//! batch == independent, this test proves both still equal *yesterday's
//! physics* — any kernel change that shifts the trajectory shows up here
//! even if it shifts batched and independent stepping together.

use wildfire_sim::batch::SimBatch;
use wildfire_sim::registry;

const T_END: f64 = 20.0;
const REL_TOL: f64 = 1e-9;

/// `(scenario, burned_area m², perimeter m, coupled steps)` at t = 20 s.
const GOLDEN: [(&str, f64, f64, usize); 4] = [
    (registry::FIG1_FIRELINE, 8100.0, 774.376192491144, 40),
    (registry::WIND_SHIFT, 2592.0, 186.37649113224182, 40),
    (registry::HETEROGENEOUS_FUEL, 2628.0, 181.6842282466488, 40),
    (registry::UNCOUPLED_BASELINE, 8100.0, 776.457510351175, 40),
];

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1.0)
}

#[test]
fn four_slot_mixed_registry_products_match_golden() {
    let mut batch = SimBatch::new(2);
    for (name, _, _, _) in GOLDEN {
        let scenario = registry::by_name(name).expect("registry scenario");
        batch.push_scenario(&scenario).expect("scenario builds");
    }
    batch.advance_to(T_END).expect("batch advance");
    let products = batch.products();
    assert_eq!(products.len(), GOLDEN.len());
    for (p, (name, area, perimeter, steps)) in products.iter().zip(GOLDEN) {
        assert_eq!(p.name, name);
        assert!(
            (p.time - T_END).abs() < 1e-9,
            "{name}: time {} != {T_END}",
            p.time
        );
        assert_eq!(p.coupled_steps, steps, "{name}: step count");
        assert!(
            rel_err(p.burned_area, area) < REL_TOL,
            "{name}: burned area {:.12} vs golden {:.12}",
            p.burned_area,
            area
        );
        assert!(
            rel_err(p.perimeter_length, perimeter) < REL_TOL,
            "{name}: perimeter {:.12} vs golden {:.12}",
            p.perimeter_length,
            perimeter
        );
        assert!(p.max_spread_rate > 0.0, "{name}: fire must have spread");
    }
}
