//! Property suite pinning batched execution **bitwise** to independent
//! per-slot stepping.
//!
//! This is the PR-5/6-style contract for the `SimBatch` layer: for random
//! small batches — mixed ignitions, winds, coupling flags, pow modes,
//! reference steps and wind-shift schedules, on any worker count — every
//! slot advanced through the batch (SoA cross-fire sweeps for compatible
//! slots, work-stealing over groups) must end in exactly the state the
//! plain [`Simulation::run_until`] loop produces, and the batch rollups
//! must equal the rollup of the independent diagnostics stream bit for
//! bit. Scheduling and lane packing are allowed to change *when* work
//! happens, never *what* is computed.

use proptest::prelude::*;
use wildfire_fire::IgnitionShape;
use wildfire_sim::batch::SimBatch;
use wildfire_sim::{DomainSpec, Simulation, SimulationBuilder};

/// Specification of one randomized slot.
#[derive(Debug, Clone)]
struct SlotSpec {
    offset: (f64, f64),
    wind: (f64, f64),
    coupled: bool,
    fast_math: bool,
    half_dt: bool,
    shift: Option<(f64, f64)>,
}

fn slot_spec() -> impl Strategy<Value = SlotSpec> {
    (
        (-50.0f64..50.0, -50.0f64..50.0),
        (-5.0f64..5.0, -5.0f64..5.0),
        0u32..8,
        (0u32..2, (-4.0f64..4.0, -4.0f64..4.0)),
    )
        .prop_map(|(offset, wind, flags, (has_shift, shift_to))| SlotSpec {
            offset,
            wind,
            coupled: flags & 1 != 0,
            fast_math: flags & 2 != 0,
            half_dt: flags & 4 != 0,
            shift: (has_shift == 1).then_some(shift_to),
        })
}

/// A deliberately tiny domain (13×13 fire mesh over a 5×5×4 atmosphere)
/// so the 64-case default stays cheap in debug builds; the kernels under
/// test are dimension-generic.
const TINY: DomainSpec = DomainSpec {
    nx: 5,
    ny: 5,
    nz: 4,
    dx: 60.0,
    dy: 60.0,
    dz: 50.0,
    refinement: 3,
};

fn build_slot(spec: &SlotSpec) -> Simulation {
    let domain = TINY;
    let center = domain.center();
    let mut b = SimulationBuilder::new()
        .domain(domain)
        .ambient_wind(spec.wind.0, spec.wind.1)
        .ignite(IgnitionShape::Circle {
            center: (center.0 + spec.offset.0, center.1 + spec.offset.1),
            radius: 25.0,
        })
        .coupled(spec.coupled)
        .fast_math(spec.fast_math)
        .dt(if spec.half_dt { 0.25 } else { 0.5 });
    if let Some(to) = spec.shift {
        b = b.wind_shift(1.0, to);
    }
    b.build().expect("slot scenario builds")
}

proptest! {
    /// Random batches against the independent loop: final ψ, ignition
    /// times, clocks, full atmospheric state and diagnostics rollups all
    /// bitwise-equal, for every worker count.
    #[test]
    fn batch_advance_is_bitwise_identical_to_independent_runs(
        specs in prop::collection::vec(slot_spec(), 1..5),
        threads in 1usize..5,
    ) {
        let t_end = 2.0;
        let sims: Vec<Simulation> = specs.iter().map(build_slot).collect();
        let mut batch = SimBatch::new(threads);
        let mut independent: Vec<Simulation> = Vec::new();
        for sim in sims {
            independent.push(sim.clone());
            batch.push(sim);
        }
        batch.advance_to(t_end).expect("batch advance");

        for (i, sim) in independent.iter_mut().enumerate() {
            let mut steps = 0usize;
            let mut max_spread = 0.0f64;
            let mut max_updraft = 0.0f64;
            sim.run_until(t_end, |_, d| {
                steps += 1;
                max_spread = max_spread.max(d.max_spread_rate);
                max_updraft = max_updraft.max(d.max_updraft);
            })
            .expect("independent run");
            let batched = &batch.simulation(i).state;
            let solo = &sim.state;
            prop_assert_eq!(&batched.fire.psi, &solo.fire.psi);
            prop_assert_eq!(&batched.fire.tig, &solo.fire.tig);
            prop_assert_eq!(batched.fire.time.to_bits(), solo.fire.time.to_bits());
            prop_assert_eq!(&batched.atmos.u, &solo.atmos.u);
            prop_assert_eq!(&batched.atmos.v, &solo.atmos.v);
            prop_assert_eq!(&batched.atmos.w, &solo.atmos.w);
            prop_assert_eq!(&batched.atmos.theta, &solo.atmos.theta);
            prop_assert_eq!(&batched.atmos.qv, &solo.atmos.qv);
            let p = &batch.products()[i];
            prop_assert_eq!(p.coupled_steps, steps);
            prop_assert_eq!(p.max_spread_rate.to_bits(), max_spread.to_bits());
            prop_assert_eq!(p.max_updraft.to_bits(), max_updraft.to_bits());
        }
    }
}
