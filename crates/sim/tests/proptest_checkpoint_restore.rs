//! Property suite pinning the headline checkpoint contract **bitwise**:
//! checkpoint mid-run → serialize → restore into a freshly built
//! simulation → continue must equal the uninterrupted run exactly, over
//! random scenarios (ignition geometry, wind + shift schedules, coupling,
//! fast-math, warm-started projection, dt) and random checkpoint times.
//!
//! The restore always goes through the full byte round-trip
//! (`Snapshot::to_bytes` → `from_bytes`), so the property also covers the
//! serialization layer: an encoding that loses even one bit of ψ, ignition
//! time, atmosphere, warm-start carry-over, or schedule cursor fails here.

use proptest::prelude::*;
use wildfire_fire::IgnitionShape;
use wildfire_obs::Snapshot;
use wildfire_sim::{DomainSpec, Scenario, Simulation, SimulationBuilder};

/// Specification of one randomized scenario + checkpoint schedule.
#[derive(Debug, Clone)]
struct CkptSpec {
    offset: (f64, f64),
    wind: (f64, f64),
    coupled: bool,
    fast_math: bool,
    warm_start: bool,
    half_dt: bool,
    shift: Option<(f64, f64)>,
    /// Coupled steps to run before the checkpoint (the shift at t = 1.0
    /// can land before, at, or after it).
    steps_before: usize,
    /// Coupled steps to run after the restore.
    steps_after: usize,
}

fn ckpt_spec() -> impl Strategy<Value = CkptSpec> {
    (
        (-50.0f64..50.0, -50.0f64..50.0),
        (-5.0f64..5.0, -5.0f64..5.0),
        0u32..16,
        (0u32..2, (-4.0f64..4.0, -4.0f64..4.0)),
        (1usize..5, 1usize..4),
    )
        .prop_map(
            |(offset, wind, flags, (has_shift, shift_to), (steps_before, steps_after))| CkptSpec {
                offset,
                wind,
                coupled: flags & 1 != 0,
                fast_math: flags & 2 != 0,
                warm_start: flags & 4 != 0,
                half_dt: flags & 8 != 0,
                shift: (has_shift == 1).then_some(shift_to),
                steps_before,
                steps_after,
            },
        )
}

/// Tiny domain (same rationale as the batch-equivalence suite): the
/// snapshot codec and restore paths are dimension-generic, so small grids
/// keep the 64-case default cheap.
const TINY: DomainSpec = DomainSpec {
    nx: 5,
    ny: 5,
    nz: 4,
    dx: 60.0,
    dy: 60.0,
    dz: 50.0,
    refinement: 3,
};

fn scenario_for(spec: &CkptSpec) -> Scenario {
    let domain = TINY;
    let center = domain.center();
    let mut b = SimulationBuilder::new()
        .domain(domain)
        .ambient_wind(spec.wind.0, spec.wind.1)
        .ignite(IgnitionShape::Circle {
            center: (center.0 + spec.offset.0, center.1 + spec.offset.1),
            radius: 25.0,
        })
        .coupled(spec.coupled)
        .fast_math(spec.fast_math)
        .warm_start(spec.warm_start)
        .dt(if spec.half_dt { 0.25 } else { 0.5 });
    if let Some(to) = spec.shift {
        b = b.wind_shift(1.0, to);
    }
    b.into_scenario()
}

fn assert_states_equal(a: &Simulation, b: &Simulation) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.state.fire.psi, &b.state.fire.psi);
    prop_assert_eq!(&a.state.fire.tig, &b.state.fire.tig);
    prop_assert_eq!(a.state.fire.time.to_bits(), b.state.fire.time.to_bits());
    prop_assert_eq!(&a.state.atmos.u, &b.state.atmos.u);
    prop_assert_eq!(&a.state.atmos.v, &b.state.atmos.v);
    prop_assert_eq!(&a.state.atmos.w, &b.state.atmos.w);
    prop_assert_eq!(&a.state.atmos.theta, &b.state.atmos.theta);
    prop_assert_eq!(&a.state.atmos.qv, &b.state.atmos.qv);
    prop_assert_eq!(a.state.atmos.time.to_bits(), b.state.atmos.time.to_bits());
    Ok(())
}

proptest! {
    /// Checkpoint → byte round-trip → restore into a fresh build →
    /// continue, against the uninterrupted run: bitwise equal at the
    /// checkpoint and after every continued step.
    #[test]
    fn restore_and_continue_is_bitwise_identical(spec in ckpt_spec()) {
        let scenario = scenario_for(&spec);
        let mut original = scenario.build().expect("scenario builds");
        for _ in 0..spec.steps_before {
            original.step().expect("pre-checkpoint step");
        }

        // Checkpoint through the full serialization path.
        let mut snap = Snapshot::new();
        original.snapshot_into(&mut snap);
        let bytes = snap.to_bytes();
        let snap = Snapshot::from_bytes(&bytes).expect("snapshot parses");

        // Restore into a *freshly built* simulation (cold workspace, state
        // at t = 0) — the disaster-recovery path.
        let mut restored = scenario.build().expect("scenario rebuilds");
        restored.restore_from(&snap).expect("restore succeeds");
        assert_states_equal(&original, &restored)?;

        // Continue both; every step must stay bitwise identical (wind
        // shifts fire from the restored cursor, warm starts from the
        // restored potential).
        for _ in 0..spec.steps_after {
            original.step().expect("original continues");
            restored.step().expect("restored continues");
            assert_states_equal(&original, &restored)?;
        }
        prop_assert_eq!(
            original.model.atmos.params.ambient_wind,
            restored.model.atmos.params.ambient_wind
        );
    }

    /// A snapshot from one scenario must refuse to restore into a
    /// different one (perturbed ignition), never silently mis-restore.
    #[test]
    fn restore_rejects_cross_scenario_checkpoints(spec in ckpt_spec()) {
        let scenario = scenario_for(&spec);
        let mut original = scenario.build().expect("scenario builds");
        original.step().expect("step");
        let mut snap = Snapshot::new();
        original.snapshot_into(&mut snap);

        let other = scenario.translated(3.0, -2.0);
        let mut victim = other.build().expect("perturbed scenario builds");
        prop_assert!(victim.restore_from(&snap).is_err());
    }
}
