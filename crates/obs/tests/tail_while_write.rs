//! The atomic-rename contract under real concurrency: an [`ObsLogWriter`]
//! appending from one thread while a [`StateFileTail`] polls from another
//! must never observe a torn or malformed log — every poll either parses a
//! complete prefix of the appended reports or sees nothing new — and the
//! tail must eventually deliver every report, in time order.

use wildfire_obs::{ObsInbox, ObsLogWriter, ObsSource, StateFileTail};

#[test]
fn tail_never_sees_torn_state_and_delivers_everything() {
    let dir = std::env::temp_dir().join("wildfire_tail_while_write");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("concurrent_log.wfst");
    std::fs::remove_file(&path).ok();

    const N_REPORTS: usize = 200;
    let writer_path = path.clone();
    let writer = std::thread::spawn(move || {
        let mut log = ObsLogWriter::open(&writer_path).unwrap();
        for i in 0..N_REPORTS {
            // Distinct payload per report so delivery can be verified; a
            // growing payload varies the file size across versions.
            let data: Vec<f64> = (0..(1 + i % 7)).map(|k| (i * 10 + k) as f64).collect();
            log.append(i as f64, i % 3, &data).unwrap();
            if i % 16 == 0 {
                std::thread::yield_now();
            }
        }
    });

    let mut tail = StateFileTail::new(&path);
    let mut inbox = ObsInbox::new();
    let mut got: Vec<(f64, usize, Vec<f64>)> = Vec::new();
    let mut polls = 0usize;
    while got.len() < N_REPORTS {
        // Any Err here would be a torn read — atomic rename forbids it.
        tail.poll(f64::INFINITY, &mut inbox)
            .expect("a concurrent poll must never see a torn log");
        for r in inbox.due.drain(..) {
            got.push((r.time, r.stream, r.data.clone()));
        }
        inbox.recycle();
        polls += 1;
        assert!(
            polls < 2_000_000,
            "tail stalled: {} of {N_REPORTS} reports after {polls} polls",
            got.len()
        );
    }
    writer.join().unwrap();

    // Everything arrived, in time order, with intact payloads.
    assert_eq!(got.len(), N_REPORTS);
    for (i, (time, stream, data)) in got.iter().enumerate() {
        assert_eq!(*time, i as f64);
        assert_eq!(*stream, i % 3);
        let expect: Vec<f64> = (0..(1 + i % 7)).map(|k| (i * 10 + k) as f64).collect();
        assert_eq!(*data, expect, "payload of report {i} must survive intact");
    }

    // A late-joining tail reads the final complete log in one shot.
    let mut fresh = StateFileTail::new(&path);
    assert_eq!(fresh.poll(f64::INFINITY, &mut inbox).unwrap(), N_REPORTS);

    std::fs::remove_file(&path).ok();
}
