//! Thermal-image observations.
//!
//! "Thermal images of a fire will provide the observations and will be
//! compared to a synthetic image from the model state" (abstract). For each
//! ensemble member the observation function renders the synthetic image
//! from the member's state; the "real" image comes from the airborne sensor
//! — here synthesized from a truth run plus sensor noise (identical-twin
//! setting, exactly as the paper's Fig. 4 uses simulated data).

use crate::Result;
use wildfire_core::{CoupledModel, CoupledState};
use wildfire_grid::VectorField2;
use wildfire_math::GaussianSampler;
use wildfire_scene::render::SceneConfig;
use wildfire_scene::{render_scene_into, Camera, RenderScratch, SceneImage};

/// Reusable buffers for rendering member states: the wind-transfer scratch,
/// the scene renderer's intermediates, and the rendered image itself. One
/// per rendering worker; after the first render every buffer is re-targeted
/// in place, so steady-state synthetic imaging is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ImageObsScratch {
    /// Coarse-grid surface wind (wind-transfer scratch).
    pub surface_wind: VectorField2,
    /// Fire-mesh wind the renderer tilts flames with.
    pub wind: VectorField2,
    /// Scene-renderer intermediates.
    pub render: RenderScratch,
    /// The rendered synthetic image (the output buffer).
    pub rendered: SceneImage,
}

impl ImageObsScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The image observation operator bound to a camera and scene settings.
#[derive(Debug, Clone)]
pub struct ImageObservation {
    /// Airborne camera geometry.
    pub camera: Camera,
    /// Scene-generation parameters.
    pub scene: SceneConfig,
}

impl ImageObservation {
    /// A camera covering the model's fire domain at `pixels` resolution
    /// from `altitude` (the paper's reference: ~3000 m).
    pub fn over_fire_domain(model: &CoupledModel, altitude: f64, pixels: usize) -> Self {
        let g = model.fire_grid;
        let (ex, ey) = g.extent();
        ImageObservation {
            camera: Camera::over_footprint(altitude, g.origin, (ex, ey), (pixels, pixels)),
            scene: SceneConfig::default(),
        }
    }

    /// Renders the synthetic image for one member state (the observation
    /// function `h` of the assimilation loop).
    ///
    /// Allocating convenience over
    /// [`ImageObservation::synthetic_image_into`]; per-member loops should
    /// hold an [`ImageObsScratch`] and use the `_into` form.
    ///
    /// # Errors
    /// Rendering failures.
    pub fn synthetic_image(
        &self,
        model: &CoupledModel,
        state: &CoupledState,
    ) -> Result<SceneImage> {
        let mut scratch = ImageObsScratch::new();
        self.synthetic_image_into(model, state, &mut scratch)?;
        Ok(scratch.rendered)
    }

    /// Allocation-free [`ImageObservation::synthetic_image`]: renders into
    /// `scratch.rendered`, drawing the wind transfer and every scene
    /// intermediate from `scratch`. Bitwise identical to the allocating
    /// form; no heap traffic once every shape has been seen.
    ///
    /// # Errors
    /// Rendering failures.
    pub fn synthetic_image_into(
        &self,
        model: &CoupledModel,
        state: &CoupledState,
        scratch: &mut ImageObsScratch,
    ) -> Result<()> {
        model
            .fire_wind_into(state, &mut scratch.surface_wind, &mut scratch.wind)
            .map_err(|_| crate::ObsError::BadStateFile("wind transfer failed".into()))?;
        render_scene_into(
            model.fire.mesh(),
            &state.fire,
            &scratch.wind,
            state.time(),
            &self.camera,
            &self.scene,
            &mut scratch.rendered,
            &mut scratch.render,
        )?;
        Ok(())
    }

    /// Synthesizes a noisy "real" image from a truth state (identical-twin
    /// data): multiplicative + additive Gaussian sensor noise on radiance.
    ///
    /// # Errors
    /// Rendering failures.
    pub fn real_image_from_truth(
        &self,
        model: &CoupledModel,
        truth: &CoupledState,
        noise_rel: f64,
        rng: &mut GaussianSampler,
    ) -> Result<SceneImage> {
        let mut img = self.synthetic_image(model, truth)?;
        let mean = img.mean();
        for v in img.data.iter_mut() {
            let rel = 1.0 + rng.normal(0.0, noise_rel);
            *v = (*v * rel + rng.normal(0.0, noise_rel * mean)).max(0.0);
        }
        Ok(img)
    }

    /// Flattens an image into the observation vector the EnKF consumes.
    pub fn to_observation_vector(img: &SceneImage) -> Vec<f64> {
        img.data.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wildfire_atmos::state::AtmosGrid;
    use wildfire_atmos::AtmosParams;
    use wildfire_fire::ignition::IgnitionShape;
    use wildfire_fuel::FuelCategory;

    fn model() -> CoupledModel {
        CoupledModel::new(
            AtmosGrid {
                nx: 6,
                ny: 6,
                nz: 4,
                dx: 60.0,
                dy: 60.0,
                dz: 50.0,
            },
            AtmosParams::default(),
            FuelCategory::ShortGrass,
            4,
        )
        .unwrap()
    }

    #[test]
    fn camera_covers_fire_domain() {
        let m = model();
        let obs = ImageObservation::over_fire_domain(&m, 3000.0, 32);
        let g = m.fire_grid;
        let (gx, gy) = obs.camera.pixel_ground_point(0, 0);
        assert!(g.contains(gx, gy));
        let (gx1, gy1) = obs.camera.pixel_ground_point(31, 31);
        assert!(g.contains(gx1, gy1));
    }

    #[test]
    fn synthetic_image_sees_the_fire() {
        let m = model();
        let mut s = m.ignite(
            &[IgnitionShape::Circle {
                center: (180.0, 180.0),
                radius: 30.0,
            }],
            0.0,
        );
        s.fire.time = 15.0;
        let obs = ImageObservation::over_fire_domain(&m, 3000.0, 32);
        let img = obs.synthetic_image(&m, &s).unwrap();
        let (lo, hi) = img.min_max();
        assert!(hi / lo > 10.0, "fire contrast {}", hi / lo);
    }

    #[test]
    fn noisy_real_image_differs_but_correlates() {
        let m = model();
        let mut s = m.ignite(
            &[IgnitionShape::Circle {
                center: (180.0, 180.0),
                radius: 30.0,
            }],
            0.0,
        );
        s.fire.time = 15.0;
        let obs = ImageObservation::over_fire_domain(&m, 3000.0, 16);
        let clean = obs.synthetic_image(&m, &s).unwrap();
        let mut rng = GaussianSampler::new(3);
        let noisy = obs.real_image_from_truth(&m, &s, 0.05, &mut rng).unwrap();
        assert_ne!(clean.data, noisy.data);
        let corr = wildfire_math::stats::correlation(&clean.data, &noisy.data);
        assert!(corr > 0.95, "correlation {corr}");
        assert!(noisy.data.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn observation_vector_matches_image() {
        let m = model();
        let s = m.ignite(&[], 0.0);
        let obs = ImageObservation::over_fire_domain(&m, 3000.0, 8);
        let img = obs.synthetic_image(&m, &s).unwrap();
        let v = ImageObservation::to_observation_vector(&img);
        assert_eq!(v.len(), 64);
        assert_eq!(v[0], img.get(0, 0));
    }
}
