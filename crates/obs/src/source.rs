//! Streaming observation ingestion: [`ObsSource`] and its implementations.
//!
//! The paper's cycle is *data driven* — "the data are received
//! asynchronously" and steer a running ensemble. The eager
//! [`ObsTimeline`] expands every report over a fixed
//! window up front; an [`ObsSource`] instead hands the driver whatever has
//! become due since the last poll, so ingestion can follow a wall clock, a
//! file on disk, or another thread. Three implementations cover the Fig. 2
//! transport shapes:
//!
//! * [`TimelineSource`] — wraps an eager [`ObsTimeline`]
//!   plus a data provider; polling it walks the pre-expanded schedule in
//!   order, so a source-driven cycle over it is bit-identical to the eager
//!   walk (pinned by test in `wildfire-ensemble`).
//! * [`StateFileTail`] — tails an append-only observation log in the
//!   [`statefile`](crate::statefile) disk format. Writers use
//!   [`ObsLogWriter`], which rewrites the whole log through the statefile's
//!   atomic temp-file-then-rename protocol, so a tailer never observes a
//!   torn log: each poll sees some complete prefix of the appended reports.
//!   An unchanged file fingerprint (length + mtime) skips the re-read, so
//!   idle polls do no parsing.
//! * [`ChannelSource`] — receives [`ObsReport`]s from other threads over a
//!   vendored crossbeam channel; polling drains the channel without
//!   blocking.
//!
//! The file and channel sources pass every arrival through a shared pending
//! queue that restores time order and applies one drop policy: a report at
//! or before the newest already-delivered time for its *stream* (within
//! [`TIME_EPS`]) is stale — it either duplicates a delivered report or
//! arrived too late to assimilate at its nominal time — and is dropped.
//! Duplicates still waiting in the queue (same stream, same time within
//! tolerance) are dropped on arrival. Reports for *different* streams are
//! never reordered relative to their times: a late report that is still
//! ahead of its own stream's delivery frontier is delivered at the next
//! poll.
//!
//! Steady-state polling recycles [`ObsReport`] buffers through the
//! [`ObsInbox`]: consume the due reports, call [`ObsInbox::recycle`], and
//! subsequent polls reuse the freed allocations.

use crate::statefile::StateFile;
use crate::timeline::TIME_EPS;
use crate::{ObsError, ObsTimeline, Result};
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// One observation report: stream `stream` measured `data` at simulation
/// time `time`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// Report time (s, simulation clock).
    pub time: f64,
    /// Index of the reporting stream (aligned with the realized operator
    /// list on the consumer side).
    pub stream: usize,
    /// The measurement vector (length = the stream operator's `dim()`).
    pub data: Vec<f64>,
}

/// Delivery buffer between an [`ObsSource`] and its consumer, with report
/// recycling: consume `due`, then [`recycle`](Self::recycle) so later polls
/// reuse the freed `data` allocations instead of allocating fresh ones.
#[derive(Debug, Default)]
pub struct ObsInbox {
    /// Reports delivered by the last poll(s), oldest first.
    pub due: Vec<ObsReport>,
    spare: Vec<ObsReport>,
}

impl ObsInbox {
    /// An empty inbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves every consumed report back to the spare pool (keeping the
    /// `data` capacity) so the next poll is allocation-free.
    pub fn recycle(&mut self) {
        self.spare.append(&mut self.due);
    }

    /// A recycled (or fresh) report buffer for a source to fill.
    pub fn take_spare(&mut self) -> ObsReport {
        let mut r = self.spare.pop().unwrap_or_default();
        r.data.clear();
        r
    }
}

/// A non-blocking feed of observation reports.
///
/// `poll(now)` appends every report due at or before `now` to the inbox and
/// never blocks: a source backed by a channel or file reports only what has
/// already arrived. Implementations deliver reports oldest-first and are
/// allocation-free in steady state when the caller recycles inbox buffers
/// (the file tail additionally re-parses only when the file changed).
pub trait ObsSource {
    /// Appends reports due at or before `now` (within [`TIME_EPS`]) to
    /// `inbox.due`, oldest first; returns how many were appended.
    ///
    /// # Errors
    /// Source-specific ingestion failures (I/O, malformed logs, provider
    /// errors). Reports already appended before the failure stay in the
    /// inbox.
    fn poll(&mut self, now: f64, inbox: &mut ObsInbox) -> Result<usize>;

    /// The time of the earliest report this source already knows about but
    /// has not delivered, if any — a scheduling hint (channel and file
    /// sources cannot see reports that have not arrived yet).
    fn next_due(&self) -> Option<f64>;
}

/// Time-ordered staging shared by the asynchronous sources: restores time
/// order across arrivals and drops stale or duplicate reports (see module
/// docs for the policy).
#[derive(Debug, Default)]
struct PendingQueue {
    /// Undelivered reports, time-sorted (stable for ties).
    pending: Vec<ObsReport>,
    /// Newest delivered report time per stream (−∞ until first delivery).
    frontier: Vec<f64>,
}

impl PendingQueue {
    fn frontier(&mut self, stream: usize) -> f64 {
        if stream >= self.frontier.len() {
            self.frontier.resize(stream + 1, f64::NEG_INFINITY);
        }
        self.frontier[stream]
    }

    /// Stages `report`, or drops it as stale/duplicate (recycling its
    /// buffer into `inbox`). Returns whether it was kept.
    fn insert(&mut self, report: ObsReport, inbox: &mut ObsInbox) -> bool {
        if report.time <= self.frontier(report.stream) + TIME_EPS {
            // Stale: at or behind this stream's delivery frontier.
            inbox.spare.push(report);
            return false;
        }
        if self
            .pending
            .iter()
            .any(|p| p.stream == report.stream && (p.time - report.time).abs() <= TIME_EPS)
        {
            // Duplicate of a report still waiting to be delivered.
            inbox.spare.push(report);
            return false;
        }
        // Insert after every pending report at or before this time, so
        // equal-time arrivals keep their arrival order.
        let at = self
            .pending
            .partition_point(|p| p.time <= report.time + TIME_EPS);
        self.pending.insert(at, report);
        true
    }

    /// Delivers every staged report due at or before `now` into the inbox,
    /// advancing the per-stream frontiers. Returns how many were delivered.
    fn emit_due(&mut self, now: f64, inbox: &mut ObsInbox) -> usize {
        let n = self.pending.partition_point(|p| p.time <= now + TIME_EPS);
        for report in self.pending.drain(..n) {
            let f = if report.stream >= self.frontier.len() {
                self.frontier.resize(report.stream + 1, f64::NEG_INFINITY);
                f64::NEG_INFINITY
            } else {
                self.frontier[report.stream]
            };
            self.frontier[report.stream] = f.max(report.time);
            inbox.due.push(report);
        }
        n
    }

    fn next_due(&self) -> Option<f64> {
        self.pending.first().map(|p| p.time)
    }
}

/// An [`ObsSource`] over a pre-expanded [`ObsTimeline`]: the scheduled
/// events become due in timeline order, and a caller-supplied provider
/// fills each report's measurement vector at delivery time. Because the
/// timeline is already sorted and duplicate-free, polling reproduces the
/// eager `analysis_times()` walk exactly — measurement for measurement, in
/// the same order — which is what makes a source-driven assimilation cycle
/// over a `TimelineSource` bit-identical to the eager one.
///
/// The provider receives `(time, stream, &mut data)` with `data` cleared;
/// identical-twin harnesses typically call
/// [`synthesize_measurements`](crate::synthesize_measurements) against a
/// truth state here.
pub struct TimelineSource<F> {
    timeline: ObsTimeline,
    cursor: usize,
    provider: F,
}

impl<F> TimelineSource<F>
where
    F: FnMut(f64, usize, &mut Vec<f64>) -> Result<()>,
{
    /// Wraps `timeline`; events before the cursor (none initially) are
    /// considered already delivered.
    pub fn new(timeline: ObsTimeline, provider: F) -> Self {
        TimelineSource {
            timeline,
            cursor: 0,
            provider,
        }
    }

    /// How many scheduled events have been delivered so far.
    pub fn delivered(&self) -> usize {
        self.cursor
    }
}

impl<F> ObsSource for TimelineSource<F>
where
    F: FnMut(f64, usize, &mut Vec<f64>) -> Result<()>,
{
    fn poll(&mut self, now: f64, inbox: &mut ObsInbox) -> Result<usize> {
        let mut n = 0;
        while let Some(e) = self.timeline.events().get(self.cursor) {
            if e.time > now + TIME_EPS {
                break;
            }
            let mut report = inbox.take_spare();
            report.time = e.time;
            report.stream = e.stream;
            (self.provider)(e.time, e.stream, &mut report.data)?;
            inbox.due.push(report);
            self.cursor += 1;
            n += 1;
        }
        Ok(n)
    }

    fn next_due(&self) -> Option<f64> {
        self.timeline.events().get(self.cursor).map(|e| e.time)
    }
}

/// Record name of the report count in an observation log.
const LOG_COUNT: &str = "obs/count";

fn log_head_name(i: usize) -> String {
    format!("obs/{i}/head")
}

fn log_data_name(i: usize) -> String {
    format!("obs/{i}/data")
}

/// Appends observation reports to an on-disk log in the
/// [`statefile`](crate::statefile) format, for a [`StateFileTail`] on the
/// other side. Every append rewrites the log through the statefile's atomic
/// temp-file-then-rename write, so concurrent tailers always read a
/// complete prefix of the appended reports, never a torn file.
///
/// Log layout: `obs/count` holds the report count `n`; report `i < n` is
/// `obs/<i>/head` = `[time, stream]` plus `obs/<i>/data` = the measurement
/// vector.
#[derive(Debug)]
pub struct ObsLogWriter {
    path: PathBuf,
    log: StateFile,
    count: usize,
}

impl ObsLogWriter {
    /// Opens a log at `path`, continuing an existing well-formed log or
    /// starting empty (the file is not created until the first
    /// [`append`](Self::append)).
    ///
    /// # Errors
    /// I/O or format failures reading an existing file.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let (log, count) = if path.exists() {
            let log = StateFile::read(&path)?;
            let count = log.get(LOG_COUNT)?.first().copied().unwrap_or(0.0) as usize;
            (log, count)
        } else {
            (StateFile::new(), 0)
        };
        Ok(ObsLogWriter { path, log, count })
    }

    /// Reports appended so far (including any from a pre-existing log).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no report has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Appends one report and atomically publishes the updated log.
    ///
    /// # Errors
    /// I/O failures writing the log.
    pub fn append(&mut self, time: f64, stream: usize, data: &[f64]) -> Result<()> {
        self.log
            .put(log_head_name(self.count), vec![time, stream as f64]);
        self.log.put(log_data_name(self.count), data.to_vec());
        self.count += 1;
        self.log.put(LOG_COUNT, vec![self.count as f64]);
        self.log.write(&self.path)
    }
}

/// Fingerprint of a log file on disk: changes whenever a new version is
/// renamed into place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileStamp {
    len: u64,
    mtime: Option<SystemTime>,
}

/// An [`ObsSource`] tailing an [`ObsLogWriter`]-format log on disk: each
/// poll re-reads the file when (and only when) its length/mtime fingerprint
/// changed, stages reports past the last-seen count, and delivers whatever
/// is due. A missing file simply means no data yet. Late or duplicate
/// reports follow the module-level drop policy.
#[derive(Debug)]
pub struct StateFileTail {
    path: PathBuf,
    stamp: Option<FileStamp>,
    seen: usize,
    queue: PendingQueue,
}

impl StateFileTail {
    /// Tails the log at `path` from its beginning.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        StateFileTail {
            path: path.into(),
            stamp: None,
            seen: 0,
            queue: PendingQueue::default(),
        }
    }

    /// The tailed path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reports ingested from the log so far (delivered or still pending).
    pub fn ingested(&self) -> usize {
        self.seen
    }

    /// Reads any new reports from the log into the pending queue.
    fn ingest(&mut self, inbox: &mut ObsInbox) -> Result<()> {
        let Ok(meta) = std::fs::metadata(&self.path) else {
            return Ok(()); // Not written yet.
        };
        let stamp = FileStamp {
            len: meta.len(),
            mtime: meta.modified().ok(),
        };
        if self.stamp == Some(stamp) {
            return Ok(());
        }
        let log = match StateFile::read(&self.path) {
            Ok(log) => log,
            // The writer may have replaced the file between the metadata
            // probe and the open; a vanished file just means "retry next
            // poll". Torn contents are impossible under atomic rename.
            Err(ObsError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let count = log.get(LOG_COUNT)?.first().copied().unwrap_or(0.0) as usize;
        for i in self.seen..count {
            let head = log.get(&log_head_name(i))?;
            if head.len() != 2 {
                return Err(ObsError::BadStateFile(format!(
                    "obs log head {i} must be [time, stream]"
                )));
            }
            let mut report = inbox.take_spare();
            report.time = head[0];
            report.stream = head[1] as usize;
            report.data.extend_from_slice(log.get(&log_data_name(i))?);
            self.queue.insert(report, inbox);
        }
        self.seen = self.seen.max(count);
        self.stamp = Some(stamp);
        Ok(())
    }
}

impl ObsSource for StateFileTail {
    fn poll(&mut self, now: f64, inbox: &mut ObsInbox) -> Result<usize> {
        self.ingest(inbox)?;
        Ok(self.queue.emit_due(now, inbox))
    }

    fn next_due(&self) -> Option<f64> {
        self.queue.next_due()
    }
}

/// An [`ObsSource`] fed from other threads over a vendored crossbeam
/// channel: producers send [`ObsReport`]s through the
/// [`Sender`](crossbeam::channel::Sender) half
/// ([`channel`](Self::channel) returns both halves); each poll drains
/// whatever has arrived without blocking, restores time order, and delivers
/// what is due. Late or duplicate reports follow the module-level drop
/// policy. A disconnected (all senders dropped) channel is not an error —
/// the source simply delivers its remaining staged reports and then runs
/// dry, observable via [`is_disconnected`](Self::is_disconnected).
#[derive(Debug)]
pub struct ChannelSource {
    rx: crossbeam::channel::Receiver<ObsReport>,
    queue: PendingQueue,
    disconnected: bool,
}

impl ChannelSource {
    /// An unbounded feed: returns the sender half for producer threads and
    /// the source for the consumer.
    pub fn channel() -> (crossbeam::channel::Sender<ObsReport>, Self) {
        let (tx, rx) = crossbeam::channel::unbounded();
        (
            tx,
            ChannelSource {
                rx,
                queue: PendingQueue::default(),
                disconnected: false,
            },
        )
    }

    /// Whether every sender has dropped (no further reports can arrive;
    /// staged ones still deliver).
    pub fn is_disconnected(&self) -> bool {
        self.disconnected
    }
}

impl ObsSource for ChannelSource {
    fn poll(&mut self, now: f64, inbox: &mut ObsInbox) -> Result<usize> {
        loop {
            match self.rx.try_recv() {
                Ok(report) => {
                    self.queue.insert(report, inbox);
                }
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    self.disconnected = true;
                    break;
                }
            }
        }
        Ok(self.queue.emit_due(now, inbox))
    }

    fn next_due(&self) -> Option<f64> {
        self.queue.next_due()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{ObsStreamKind, ObsStreamSpec};

    fn spec(start: f64, period: f64) -> ObsStreamSpec {
        ObsStreamSpec::new(
            ObsStreamKind::StridedPsi {
                stride: 5,
                sigma: 1.0,
            },
            start,
            period,
        )
    }

    fn report(time: f64, stream: usize, v: f64) -> ObsReport {
        ObsReport {
            time,
            stream,
            data: vec![v],
        }
    }

    #[test]
    fn timeline_source_replays_schedule_in_order() {
        let tl = ObsTimeline::from_streams(&[spec(60.0, 60.0), spec(30.0, 30.0)], 120.0);
        let expect: Vec<(f64, usize)> = tl.events().iter().map(|e| (e.time, e.stream)).collect();
        let mut src = TimelineSource::new(tl, |t, s, data| {
            data.push(t + s as f64);
            Ok(())
        });
        let mut inbox = ObsInbox::new();
        // Nothing due before the first report.
        assert_eq!(src.poll(10.0, &mut inbox).unwrap(), 0);
        assert_eq!(src.next_due(), Some(30.0));
        // Poll in two bites; order must match the eager timeline exactly.
        let mut got = Vec::new();
        src.poll(60.0, &mut inbox).unwrap();
        for r in inbox.due.drain(..) {
            assert_eq!(r.data, vec![r.time + r.stream as f64]);
            got.push((r.time, r.stream));
        }
        src.poll(1e9, &mut inbox).unwrap();
        for r in inbox.due.drain(..) {
            got.push((r.time, r.stream));
        }
        assert_eq!(got, expect);
        assert_eq!(src.next_due(), None);
        assert_eq!(src.delivered(), expect.len());
    }

    #[test]
    fn inbox_recycles_buffers() {
        let tl = ObsTimeline::from_streams(&[spec(0.0, 10.0)], 100.0);
        let mut src = TimelineSource::new(tl, |_, _, data| {
            data.extend_from_slice(&[1.0, 2.0, 3.0]);
            Ok(())
        });
        let mut inbox = ObsInbox::new();
        src.poll(0.0, &mut inbox).unwrap();
        assert_eq!(inbox.due.len(), 1);
        let ptr = inbox.due[0].data.as_ptr();
        inbox.recycle();
        assert!(inbox.due.is_empty());
        src.poll(10.0, &mut inbox).unwrap();
        // The recycled allocation is reused, not reallocated.
        assert_eq!(inbox.due[0].data.as_ptr(), ptr);
    }

    #[test]
    fn pending_queue_orders_and_dedups() {
        let (tx, mut src) = ChannelSource::channel();
        let mut inbox = ObsInbox::new();
        // Out-of-order arrivals are delivered in time order.
        tx.send(report(20.0, 0, 1.0)).unwrap();
        tx.send(report(10.0, 1, 2.0)).unwrap();
        assert_eq!(src.poll(30.0, &mut inbox).unwrap(), 2);
        let order: Vec<f64> = inbox.due.iter().map(|r| r.time).collect();
        assert_eq!(order, vec![10.0, 20.0]);
        inbox.recycle();
        // A duplicate of a delivered report is dropped.
        tx.send(report(20.0, 0, 1.0)).unwrap();
        // A late report behind its own stream's frontier is dropped...
        tx.send(report(15.0, 0, 9.0)).unwrap();
        // ...but a late report for a stream still behind is delivered.
        tx.send(report(15.0, 1, 3.0)).unwrap();
        assert_eq!(src.poll(30.0, &mut inbox).unwrap(), 1);
        assert_eq!(inbox.due.len(), 1);
        assert_eq!((inbox.due[0].stream, inbox.due[0].time), (1, 15.0));
        inbox.recycle();
        // Duplicates within the pending queue collapse to one.
        tx.send(report(40.0, 0, 5.0)).unwrap();
        tx.send(report(40.0, 0, 6.0)).unwrap();
        assert_eq!(src.poll(50.0, &mut inbox).unwrap(), 1);
        assert_eq!(inbox.due[0].data, vec![5.0]);
        inbox.recycle();
        // Not-yet-due reports stay queued.
        tx.send(report(100.0, 0, 7.0)).unwrap();
        assert_eq!(src.poll(50.0, &mut inbox).unwrap(), 0);
        assert_eq!(src.next_due(), Some(100.0));
        assert!(!src.is_disconnected());
        drop(tx);
        assert_eq!(src.poll(200.0, &mut inbox).unwrap(), 1);
        assert!(src.is_disconnected());
    }

    #[test]
    fn obs_log_roundtrips_through_tail() {
        let dir = std::env::temp_dir().join("wildfire_obs_log_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("obs_log.wfst");
        std::fs::remove_file(&path).ok();

        let mut tail = StateFileTail::new(&path);
        let mut inbox = ObsInbox::new();
        // Missing file: no data yet, not an error.
        assert_eq!(tail.poll(1e9, &mut inbox).unwrap(), 0);

        let mut writer = ObsLogWriter::open(&path).unwrap();
        assert!(writer.is_empty());
        writer.append(10.0, 0, &[1.0, 2.0]).unwrap();
        writer.append(20.0, 1, &[3.0]).unwrap();
        assert_eq!(writer.len(), 2);

        // Only what is due is delivered; the rest stays pending.
        assert_eq!(tail.poll(10.0, &mut inbox).unwrap(), 1);
        assert_eq!(
            inbox.due[0],
            ObsReport {
                time: 10.0,
                stream: 0,
                data: vec![1.0, 2.0],
            }
        );
        assert_eq!(tail.next_due(), Some(20.0));
        inbox.recycle();
        assert_eq!(tail.poll(25.0, &mut inbox).unwrap(), 1);
        assert_eq!(inbox.due[0].data, vec![3.0]);
        inbox.recycle();

        // Appends after the tail started are picked up.
        writer.append(30.0, 0, &[4.0]).unwrap();
        assert_eq!(tail.poll(30.0, &mut inbox).unwrap(), 1);
        assert_eq!(inbox.due[0].time, 30.0);
        assert_eq!(tail.ingested(), 3);
        inbox.recycle();

        // Unchanged file: the idle poll ingests nothing new.
        assert_eq!(tail.poll(1e9, &mut inbox).unwrap(), 0);

        // A fresh writer over the existing log continues the count.
        let mut writer2 = ObsLogWriter::open(&path).unwrap();
        assert_eq!(writer2.len(), 3);
        writer2.append(40.0, 1, &[5.0]).unwrap();
        assert_eq!(tail.poll(1e9, &mut inbox).unwrap(), 1);
        assert_eq!(inbox.due[0].time, 40.0);

        std::fs::remove_file(&path).ok();
    }
}
