//! Heterogeneous observation pools: [`ObsSet`].
//!
//! Fig. 2 feeds the EnKF from a *pool of data* — strided ψ grids, weather
//! stations, thermal images — in one analysis. An [`ObsSet`] packs any mix
//! of [`ObservationOperator`]s and their real measurement vectors into the
//! single `(y, H(X), R)` triple a Kalman analysis consumes, concatenating
//! block-wise in entry order. Packing is allocation-free in steady state
//! through an [`ObsWorkspace`] (for operators whose evaluation is — see
//! [`crate::operator`]).

use crate::operator::{ObsScratch, ObservationOperator};
use crate::{ObsError, Result};
use wildfire_core::CoupledState;
use wildfire_math::Matrix;

/// One entry of the pool: an observation operator plus the real
/// measurements it corresponds to (`data.len() == op.dim()`).
pub struct ObsEntry<'a> {
    /// The observation function for this data source.
    pub op: &'a dyn ObservationOperator,
    /// The real measurement vector `y` block.
    pub data: &'a [f64],
}

/// A pool of observation sources consumed by one analysis. Borrows its
/// operators and measurement vectors; build once per analysis time and
/// reuse across packing calls (the packed buffers live in the
/// [`ObsWorkspace`], so repacking the same set is allocation-free).
#[derive(Default)]
pub struct ObsSet<'a> {
    entries: Vec<ObsEntry<'a>>,
}

impl<'a> ObsSet<'a> {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a data source to the pool.
    ///
    /// # Errors
    /// [`ObsError::Operator`] when the measurement vector's length does not
    /// match the operator's dimension.
    pub fn push(&mut self, op: &'a dyn ObservationOperator, data: &'a [f64]) -> Result<()> {
        if data.len() != op.dim() {
            return Err(ObsError::Operator(
                "measurement vector length differs from operator dimension",
            ));
        }
        self.entries.push(ObsEntry { op, data });
        Ok(())
    }

    /// The pooled entries, in packing order.
    pub fn entries(&self) -> &[ObsEntry<'a>] {
        &self.entries
    }

    /// Number of data sources in the pool.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total observation dimension `m` (sum over entries).
    pub fn total_dim(&self) -> usize {
        self.entries.iter().map(|e| e.op.dim()).sum()
    }

    /// Packs the pool against an ensemble into `ws`: the stacked
    /// measurement vector `y` (`ws.data`), the synthetic observations
    /// `H(X)` with one column per member (`ws.hx`), and the stacked
    /// error variances `R` diagonal (`ws.var`). Entries are stacked in
    /// insertion order; members are observed in slice order, so the packing
    /// is deterministic and bit-identical across repeated calls.
    ///
    /// # Errors
    /// Operator failures (grid mismatches, rendering errors).
    pub fn pack_into(&self, members: &[CoupledState], ws: &mut ObsWorkspace) -> Result<()> {
        self.pack_fixed_into(members.len(), ws);
        for (j, member) in members.iter().enumerate() {
            self.pack_member_column(member, ws.hx.col_mut(j), &mut ws.scratch)?;
        }
        Ok(())
    }

    /// The member-independent half of [`ObsSet::pack_into`]: stacks `y` and
    /// the `R` diagonal and sizes `H(X)` for `n_members` columns, leaving
    /// the columns zeroed. Pair with [`ObsSet::pack_member_column`] per
    /// member to reproduce `pack_into` exactly — the split exists so a
    /// caller with a worker pool can evaluate the member columns in
    /// parallel (each worker needs only its own [`ObsScratch`]).
    pub fn pack_fixed_into(&self, n_members: usize, ws: &mut ObsWorkspace) {
        let m = self.total_dim();
        ws.data.clear();
        for e in &self.entries {
            ws.data.extend_from_slice(e.data);
        }
        ws.var.clear();
        ws.var.resize(m, 0.0);
        let mut off = 0;
        for e in &self.entries {
            let d = e.op.dim();
            e.op.variances_into(&mut ws.var[off..off + d]);
            off += d;
        }
        ws.hx.resize_zeroed(m, n_members);
    }

    /// Evaluates every pooled operator on one member into that member's
    /// `H(X)` column (`col.len() == self.total_dim()`), block-stacked in
    /// entry order. The per-member half of the [`ObsSet::pack_fixed_into`]
    /// split; independent of every other member, so columns can be filled
    /// concurrently (results are bit-identical for any schedule).
    ///
    /// # Errors
    /// Operator failures (grid mismatches, rendering errors).
    pub fn pack_member_column(
        &self,
        member: &CoupledState,
        col: &mut [f64],
        scratch: &mut ObsScratch,
    ) -> Result<()> {
        let mut off = 0;
        for e in &self.entries {
            let d = e.op.dim();
            e.op.observe_into_ws(member, &mut col[off..off + d], scratch)?;
            off += d;
        }
        Ok(())
    }
}

/// Reusable packing buffers for [`ObsSet::pack_into`]: sized on first use,
/// reused thereafter. The filter consumes `data`, `hx`, and `var` directly.
#[derive(Debug, Clone, Default)]
pub struct ObsWorkspace {
    /// Stacked real measurements `y` (length `m`).
    pub data: Vec<f64>,
    /// Synthetic observations `H(X)` (`m × N`, one column per member).
    pub hx: Matrix,
    /// Stacked observation-error variances (diagonal of `R`, length `m`).
    pub var: Vec<f64>,
    /// Operator-evaluation scratch (surface fields, …).
    pub scratch: ObsScratch,
}

impl ObsWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// RMS innovation of the ensemble mean against the packed data:
    /// `sqrt(mean_i (y_i − mean_j H(x_j)_i)²)`. Call after
    /// [`ObsSet::pack_into`]; a drop between the forecast and the analysis
    /// packing is the data-side view of a successful analysis.
    pub fn innovation_rms(&self) -> f64 {
        let (m, n_ens) = self.hx.dims();
        if m == 0 || n_ens == 0 {
            return 0.0;
        }
        let mut ss = 0.0;
        for i in 0..m {
            let mut mean = 0.0;
            for j in 0..n_ens {
                mean += self.hx[(i, j)];
            }
            mean /= n_ens as f64;
            let r = self.data[i] - mean;
            ss += r * r;
        }
        (ss / m as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{StationTemperatures, StridedPsi};
    use crate::station::WeatherStation;
    use wildfire_atmos::state::AtmosGrid;
    use wildfire_atmos::AtmosParams;
    use wildfire_core::CoupledModel;
    use wildfire_fire::ignition::IgnitionShape;
    use wildfire_fuel::FuelCategory;

    fn model() -> CoupledModel {
        CoupledModel::new(
            AtmosGrid {
                nx: 6,
                ny: 6,
                nz: 4,
                dx: 60.0,
                dy: 60.0,
                dz: 50.0,
            },
            AtmosParams::default(),
            FuelCategory::ShortGrass,
            4,
        )
        .unwrap()
    }

    fn members(m: &CoupledModel, n: usize) -> Vec<CoupledState> {
        (0..n)
            .map(|k| {
                m.ignite(
                    &[IgnitionShape::Circle {
                        center: (120.0 + 20.0 * k as f64, 150.0),
                        radius: 25.0,
                    }],
                    0.0,
                )
            })
            .collect()
    }

    #[test]
    fn heterogeneous_pack_stacks_blocks_in_order() {
        let m = model();
        let ens = members(&m, 3);
        let psi_op = StridedPsi::new(m.fire_grid, 9, 2.0);
        let st_op = StationTemperatures::new(
            vec![
                WeatherStation::new("A", 120.0, 150.0),
                WeatherStation::new("B", 220.0, 220.0),
            ],
            300.0,
            1.0,
        );
        let psi_data = vec![0.5; psi_op.dim()];
        let st_data = vec![301.0, 299.5];
        let mut set = ObsSet::new();
        set.push(&psi_op, &psi_data).unwrap();
        set.push(&st_op, &st_data).unwrap();
        assert_eq!(set.total_dim(), psi_op.dim() + 2);

        let mut ws = ObsWorkspace::new();
        set.pack_into(&ens, &mut ws).unwrap();
        assert_eq!(ws.data.len(), set.total_dim());
        assert_eq!(ws.hx.dims(), (set.total_dim(), 3));
        // y stacks the blocks verbatim.
        assert_eq!(&ws.data[..psi_op.dim()], psi_data.as_slice());
        assert_eq!(&ws.data[psi_op.dim()..], st_data.as_slice());
        // R stacks per-entry variances.
        assert!(ws.var[..psi_op.dim()].iter().all(|&v| v == 4.0));
        assert!(ws.var[psi_op.dim()..].iter().all(|&v| v == 1.0));
        // H(X) columns match per-operator evaluation.
        for (j, member) in ens.iter().enumerate() {
            let psi_obs = psi_op.observe(member).unwrap();
            let st_obs = st_op.observe(member).unwrap();
            let col = ws.hx.col(j);
            assert_eq!(&col[..psi_op.dim()], psi_obs.as_slice());
            assert_eq!(&col[psi_op.dim()..], st_obs.as_slice());
        }
    }

    #[test]
    fn repacking_is_deterministic() {
        let m = model();
        let ens = members(&m, 2);
        let psi_op = StridedPsi::new(m.fire_grid, 5, 1.0);
        let data = vec![0.0; psi_op.dim()];
        let mut set = ObsSet::new();
        set.push(&psi_op, &data).unwrap();
        let mut ws1 = ObsWorkspace::new();
        let mut ws2 = ObsWorkspace::new();
        set.pack_into(&ens, &mut ws1).unwrap();
        set.pack_into(&ens, &mut ws2).unwrap();
        set.pack_into(&ens, &mut ws1).unwrap();
        assert_eq!(ws1.hx.as_slice(), ws2.hx.as_slice());
        assert_eq!(ws1.data, ws2.data);
        assert_eq!(ws1.var, ws2.var);
    }

    #[test]
    fn mismatched_measurement_length_rejected() {
        let m = model();
        let psi_op = StridedPsi::new(m.fire_grid, 5, 1.0);
        let bad = vec![0.0; psi_op.dim() + 1];
        let mut set = ObsSet::new();
        assert!(set.push(&psi_op, &bad).is_err());
    }

    #[test]
    fn innovation_rms_measures_mean_misfit() {
        let m = model();
        let ens = members(&m, 2);
        let psi_op = StridedPsi::new(m.fire_grid, 3, 1.0);
        // Data exactly at the ensemble mean → zero innovation.
        let a = psi_op.observe(&ens[0]).unwrap();
        let b = psi_op.observe(&ens[1]).unwrap();
        let mean: Vec<f64> = a.iter().zip(&b).map(|(x, y)| (x + y) / 2.0).collect();
        let mut set = ObsSet::new();
        set.push(&psi_op, &mean).unwrap();
        let mut ws = ObsWorkspace::new();
        set.pack_into(&ens, &mut ws).unwrap();
        assert!(ws.innovation_rms() < 1e-12);
        // Shifted data → positive innovation.
        let shifted: Vec<f64> = mean.iter().map(|v| v + 3.0).collect();
        let mut set2 = ObsSet::new();
        set2.push(&psi_op, &shifted).unwrap();
        set2.pack_into(&ens, &mut ws).unwrap();
        assert!((ws.innovation_rms() - 3.0).abs() < 1e-9);
    }
}
