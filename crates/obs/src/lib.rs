//! # wildfire-obs
//!
//! The observation layer of §3.1: everything between the model state and
//! the "real data pool" of Fig. 2. The assimilation components never see an
//! instrument — they see [`ObservationOperator`]s packed into an [`ObsSet`]:
//! the thin software layer the paper requires between the data sources and
//! the EnKF.
//!
//! * [`operator`] — the [`ObservationOperator`] trait (`h(x)` plus error
//!   variances) and its concrete instruments: [`StridedPsi`] (gridded ψ
//!   samples, the identical-twin baseline), [`StationTemperatures`]
//!   (weather-station networks), and [`ImagePixels`] (synthetic infrared
//!   imagery).
//! * [`obs_set`] — [`ObsSet`]: a heterogeneous pool of operators + real
//!   measurements packed block-wise into the single `(y, H(X), R)` triple
//!   one analysis consumes, allocation-free in steady state through an
//!   [`ObsWorkspace`].
//! * [`timeline`] — time-tagged data streams: [`ObsStreamSpec`] declares an
//!   instrument and its cadence, [`ObsTimeline`] expands declarations into
//!   the sorted schedule of analysis times a driver walks.
//! * [`station`] — weather stations reporting location, timestamp,
//!   temperature, wind, and humidity; the observation operator locates the
//!   station's grid cell by linear interpolation of the location and
//!   evaluates model fields at the station by biquadratic interpolation,
//!   with a fireline-proximity check — all as §3.1 describes.
//! * [`image_obs`] — thermal-image observations: synthetic images rendered
//!   from the model state (via [`wildfire_scene`]) and noisy "real" images
//!   generated from a truth run for identical-twin experiments.
//! * [`statefile`] — the binary disk-file state exchange of Fig. 2 ("the
//!   ensemble of model states is maintained in disk files"), with a
//!   versioned header, named f64 arrays, and atomic writes. A thin software
//!   layer (the [`statefile::StateCodec`] trait) hides the fire code and
//!   the transfer method from the assimilation components, as §3.1 requires.
//! * [`source`] — streaming ingestion: the [`ObsSource`] trait
//!   (`poll(now)`, non-blocking) delivers whatever reports have become due,
//!   through a replayed timeline ([`TimelineSource`]), a tailed on-disk
//!   observation log ([`StateFileTail`] / [`ObsLogWriter`]), or a channel
//!   fed from other threads ([`ChannelSource`]).

pub mod image_obs;
pub mod obs_set;
pub mod operator;
pub mod snapshot;
pub mod source;
pub mod statefile;
pub mod station;
pub mod timeline;

pub use image_obs::{ImageObsScratch, ImageObservation};
pub use obs_set::{ObsEntry, ObsSet, ObsWorkspace};
pub use operator::{
    synthesize_measurements, ImagePixels, ObsScratch, ObservationOperator, StationTemperatures,
    StridedPsi,
};
pub use snapshot::{CoupledSnapshot, Snapshot, SNAPSHOT_VERSION};
pub use source::{
    ChannelSource, ObsInbox, ObsLogWriter, ObsReport, ObsSource, StateFileTail, TimelineSource,
};
pub use station::{StationObservation, StationReport, SurfaceFields, WeatherStation};
pub use timeline::{ObsEvent, ObsStreamKind, ObsStreamSpec, ObsTimeline, TIME_EPS};

/// Errors from the observation layer.
#[derive(Debug)]
pub enum ObsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A state file was malformed or had an unexpected version.
    BadStateFile(String),
    /// The requested record is missing from a state file.
    MissingRecord(String),
    /// Grid/scene errors from rendering synthetic images.
    Scene(wildfire_scene::SceneError),
    /// An observation operator rejected its inputs (grid mismatch,
    /// measurement-vector length, …).
    Operator(&'static str),
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsError::Io(e) => write!(f, "i/o: {e}"),
            ObsError::BadStateFile(msg) => write!(f, "bad state file: {msg}"),
            ObsError::MissingRecord(name) => write!(f, "missing record: {name}"),
            ObsError::Scene(e) => write!(f, "scene: {e}"),
            ObsError::Operator(msg) => write!(f, "observation operator: {msg}"),
        }
    }
}

impl std::error::Error for ObsError {}

impl From<std::io::Error> for ObsError {
    fn from(e: std::io::Error) -> Self {
        ObsError::Io(e)
    }
}

impl From<wildfire_scene::SceneError> for ObsError {
    fn from(e: wildfire_scene::SceneError) -> Self {
        ObsError::Scene(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, ObsError>;
