//! # wildfire-obs
//!
//! The observation layer of §3.1: everything between the model state and
//! the "real data pool" of Fig. 2.
//!
//! * [`station`] — weather stations reporting location, timestamp,
//!   temperature, wind, and humidity; the observation operator locates the
//!   station's grid cell by linear interpolation of the location and
//!   evaluates model fields at the station by biquadratic interpolation,
//!   with a fireline-proximity check — all as §3.1 describes.
//! * [`image_obs`] — thermal-image observations: synthetic images rendered
//!   from the model state (via [`wildfire_scene`]) and noisy "real" images
//!   generated from a truth run for identical-twin experiments.
//! * [`statefile`] — the binary disk-file state exchange of Fig. 2 ("the
//!   ensemble of model states is maintained in disk files"), with a
//!   versioned header, named f64 arrays, and atomic writes. A thin software
//!   layer (the [`statefile::StateCodec`] trait) hides the fire code and
//!   the transfer method from the assimilation components, as §3.1 requires.

pub mod image_obs;
pub mod statefile;
pub mod station;

pub use station::{StationObservation, StationReport, WeatherStation};

/// Errors from the observation layer.
#[derive(Debug)]
pub enum ObsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A state file was malformed or had an unexpected version.
    BadStateFile(String),
    /// The requested record is missing from a state file.
    MissingRecord(String),
    /// Grid/scene errors from rendering synthetic images.
    Scene(wildfire_scene::SceneError),
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsError::Io(e) => write!(f, "i/o: {e}"),
            ObsError::BadStateFile(msg) => write!(f, "bad state file: {msg}"),
            ObsError::MissingRecord(name) => write!(f, "missing record: {name}"),
            ObsError::Scene(e) => write!(f, "scene: {e}"),
        }
    }
}

impl std::error::Error for ObsError {}

impl From<std::io::Error> for ObsError {
    fn from(e: std::io::Error) -> Self {
        ObsError::Io(e)
    }
}

impl From<wildfire_scene::SceneError> for ObsError {
    fn from(e: wildfire_scene::SceneError) -> Self {
        ObsError::Scene(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, ObsError>;
