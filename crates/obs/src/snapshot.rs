//! Versioned full-state checkpoints.
//!
//! [`StateFile`](crate::statefile::StateFile) (format v1) carries one fire
//! state between the Fig. 2 phases. A [`Snapshot`] (format v2, same magic
//! and record layout, bumped header version) carries *everything* a bitwise
//! restore needs: the level-set field and ignition times, the atmosphere's
//! prognostic fields and clock, the warm-start pressure potential the
//! projection seeds from, RNG provenance, and a fingerprint of the
//! producing configuration so a snapshot cannot silently restore into the
//! wrong model. The headline contract is exact: checkpoint mid-run →
//! restore → continue must reproduce the uninterrupted run bit for bit.
//!
//! The API is workspace-shaped like the rest of the codebase: `*_into`
//! methods reuse the caller's buffers, so steady-state checkpointing
//! performs no heap allocation once record names and payload capacities
//! are warm.

use crate::{ObsError, Result};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;
use wildfire_core::{CoupledModel, CoupledState, CoupledWorkspace};
use wildfire_fire::UNBURNED;

/// Snapshot format version (shares the `WFST` magic with
/// [`crate::statefile::VERSION`] = 1; readers of either version reject the
/// other from the header alone).
pub const SNAPSHOT_VERSION: u32 = 2;

/// A named-record container of `f64` arrays — format v2.
///
/// Unlike [`StateFile`](crate::statefile::StateFile), record payloads are
/// written through reusing methods ([`Snapshot::put_slice`],
/// [`Snapshot::record_mut`]) so repeatedly snapshotting into the same
/// container allocates nothing once warm.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    records: BTreeMap<String, Vec<f64>>,
}

impl Snapshot {
    /// Empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.records.keys().map(|s| s.as_str())
    }

    /// Inserts or overwrites a record, reusing the existing payload buffer
    /// when the name is already present (the steady-state path).
    pub fn put_slice(&mut self, name: &str, data: &[f64]) {
        let rec = self.record_mut(name);
        rec.extend_from_slice(data);
    }

    /// Inserts or overwrites a single-element record.
    pub fn put_scalar(&mut self, name: &str, value: f64) {
        self.put_slice(name, &[value]);
    }

    /// Inserts or overwrites a `u64` carried bitwise inside an `f64` slot
    /// (little-endian serialization preserves the bit pattern exactly).
    pub fn put_u64(&mut self, name: &str, value: u64) {
        self.put_scalar(name, f64::from_bits(value));
    }

    /// Clears and returns the payload buffer for `name`, inserting an empty
    /// record first if absent. The caller fills it in place — the zero-copy
    /// seam for encoders that map values while writing (e.g. the UNBURNED
    /// sentinel).
    pub fn record_mut(&mut self, name: &str) -> &mut Vec<f64> {
        // Avoid allocating the key when the record already exists.
        if !self.records.contains_key(name) {
            self.records.insert(name.to_string(), Vec::new());
        }
        let rec = self.records.get_mut(name).expect("just ensured");
        rec.clear();
        rec
    }

    /// Borrows a record.
    ///
    /// # Errors
    /// [`ObsError::MissingRecord`] when absent.
    pub fn get(&self, name: &str) -> Result<&[f64]> {
        self.records
            .get(name)
            .map(|v| v.as_slice())
            .ok_or_else(|| ObsError::MissingRecord(name.to_string()))
    }

    /// Reads a single-element record.
    ///
    /// # Errors
    /// [`ObsError::MissingRecord`] when absent; [`ObsError::BadStateFile`]
    /// when not exactly one element.
    pub fn get_scalar(&self, name: &str) -> Result<f64> {
        let rec = self.get(name)?;
        if rec.len() != 1 {
            return Err(ObsError::BadStateFile(format!(
                "record {name} must hold exactly one value"
            )));
        }
        Ok(rec[0])
    }

    /// Reads a `u64` stored bitwise by [`Snapshot::put_u64`].
    ///
    /// # Errors
    /// As [`Snapshot::get_scalar`].
    pub fn get_u64(&self, name: &str) -> Result<u64> {
        Ok(self.get_scalar(name)?.to_bits())
    }

    /// Serializes into `out` (cleared first; capacity is reused).
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&crate::statefile::MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for (name, data) in &self.records {
            let name_bytes = name.as_bytes();
            out.extend_from_slice(&(name_bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(name_bytes);
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            for v in data {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    /// Serializes to a fresh byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.serialize_into(&mut out);
        out
    }

    /// Parses from bytes.
    ///
    /// # Errors
    /// [`ObsError::BadStateFile`] on any structural problem, including a v1
    /// (or any non-v2) header.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut snap = Snapshot::new();
        Self::from_bytes_into(bytes, &mut snap)?;
        Ok(snap)
    }

    /// Allocation-free [`Snapshot::from_bytes`]: parses into `snap`, reusing
    /// payload buffers of same-named records. When the byte stream's record
    /// set matches `snap`'s (the steady-state exchange path), no heap
    /// allocation occurs; on a schema change the container is rebuilt.
    ///
    /// On error `snap` may hold a partial record set — callers must treat
    /// it as undefined until the next successful parse.
    ///
    /// # Errors
    /// As [`Snapshot::from_bytes`].
    pub fn from_bytes_into(bytes: &[u8], snap: &mut Snapshot) -> Result<()> {
        let parsed = Self::parse_into(bytes, snap)?;
        if snap.records.len() != parsed {
            // Stale records from a previous schema linger; rebuild clean.
            snap.records.clear();
            Self::parse_into(bytes, snap)?;
        }
        Ok(())
    }

    /// Header + record parse; fills `snap` (reusing same-named buffers) and
    /// returns the record count declared by the stream.
    fn parse_into(bytes: &[u8], snap: &mut Snapshot) -> Result<usize> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > bytes.len() {
                return Err(ObsError::BadStateFile("truncated snapshot".into()));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let magic = take(&mut pos, 4)?;
        if magic != crate::statefile::MAGIC {
            return Err(ObsError::BadStateFile("bad magic".into()));
        }
        let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        if version != SNAPSHOT_VERSION {
            return Err(ObsError::BadStateFile(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        for _ in 0..count {
            let name_len =
                u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
            let name = std::str::from_utf8(take(&mut pos, name_len)?)
                .map_err(|_| ObsError::BadStateFile("non-utf8 record name".into()))?;
            let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
            // Bound the element count by the remaining bytes before any
            // reservation, so a corrupt length cannot balloon memory.
            if bytes.len() - pos < len.saturating_mul(8) {
                return Err(ObsError::BadStateFile("truncated snapshot".into()));
            }
            let payload = take(&mut pos, len * 8)?;
            let rec = snap.record_mut(name);
            rec.reserve(len);
            for chunk in payload.chunks_exact(8) {
                rec.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
            }
        }
        if pos != bytes.len() {
            return Err(ObsError::BadStateFile("trailing bytes".into()));
        }
        Ok(count)
    }

    /// Writes atomically: serialize to `path.tmp` in the same directory,
    /// fsync, then rename onto `path` — the same torn-read-free protocol as
    /// [`StateFile::write`](crate::statefile::StateFile::write) and
    /// [`ObsLogWriter`](crate::source::ObsLogWriter).
    ///
    /// # Errors
    /// I/O failures.
    pub fn write(&self, path: &Path) -> Result<()> {
        let mut buf = Vec::new();
        self.write_buf(path, &mut buf)
    }

    /// [`Snapshot::write`] with a caller-owned byte buffer (cleared and
    /// reused), so repeated disk exchange allocates nothing once warm.
    ///
    /// # Errors
    /// I/O failures.
    pub fn write_buf(&self, path: &Path, buf: &mut Vec<u8>) -> Result<()> {
        self.serialize_into(buf);
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(buf)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    /// I/O and format failures.
    pub fn read(path: &Path) -> Result<Self> {
        let mut snap = Snapshot::new();
        let mut buf = Vec::new();
        Self::read_into(path, &mut snap, &mut buf)?;
        Ok(snap)
    }

    /// Allocation-free [`Snapshot::read`]: the file bytes land in `buf`
    /// (cleared and reused) and records are parsed into `snap` through
    /// [`Snapshot::from_bytes_into`].
    ///
    /// # Errors
    /// I/O and format failures.
    pub fn read_into(path: &Path, snap: &mut Snapshot, buf: &mut Vec<u8>) -> Result<()> {
        buf.clear();
        std::fs::File::open(path)?.read_to_end(buf)?;
        Self::from_bytes_into(buf, snap)
    }
}

/// Encodes ignition times with `UNBURNED` mapped to the exactly
/// representable `f64::MAX` sentinel (matching the v1 fire codec), writing
/// in place into a snapshot record. Public so ensemble-level snapshots can
/// concatenate member `t_i` fields under the same encoding.
pub fn encode_tig_into(tig: &[f64], rec: &mut Vec<f64>) {
    rec.extend(
        tig.iter()
            .map(|&t| if t.is_finite() { t } else { f64::MAX }),
    );
}

/// Decodes a sentinel-mapped ignition-time record into `out` (inverse of
/// [`encode_tig_into`]).
pub fn decode_tig_into(rec: &[f64], out: &mut [f64]) {
    for (o, &t) in out.iter_mut().zip(rec) {
        *o = if t >= f64::MAX { UNBURNED } else { t };
    }
}

/// The configuration fingerprint record: grids and coupling flag of the
/// producing model, checked on restore so a snapshot cannot be deserialized
/// into a structurally different model.
pub const FINGERPRINT: &str = "model/fingerprint";

/// Writes the [`FINGERPRINT`] payload for `model` into `rec` (cleared by
/// the caller via [`Snapshot::record_mut`]). Public so ensemble-level
/// snapshots can stamp the same fingerprint record.
pub fn model_fingerprint_into(model: &CoupledModel, rec: &mut Vec<f64>) {
    let fg = model.fire_grid;
    let ag = model.atmos.grid;
    rec.extend_from_slice(&[
        fg.nx as f64,
        fg.ny as f64,
        fg.dx,
        fg.dy,
        fg.origin.0,
        fg.origin.1,
        ag.nx as f64,
        ag.ny as f64,
        ag.nz as f64,
        ag.dx,
        ag.dy,
        ag.dz,
        if model.coupled { 1.0 } else { 0.0 },
    ]);
}

/// Verifies that `snap`'s [`FINGERPRINT`] record was produced by a model
/// bitwise-compatible with `model`.
///
/// # Errors
/// Missing record or any mismatching entry.
pub fn check_model_fingerprint(model: &CoupledModel, snap: &Snapshot) -> Result<()> {
    let rec = snap.get(FINGERPRINT)?;
    let mut want = Vec::new();
    model_fingerprint_into(model, &mut want);
    if rec.len() != want.len()
        || rec
            .iter()
            .zip(&want)
            .any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return Err(ObsError::BadStateFile(
            "snapshot fingerprint does not match the restoring model".into(),
        ));
    }
    Ok(())
}

/// Checkpoint/restore on the coupled model — implemented here (the obs
/// crate owns the on-disk format) as an extension trait over
/// [`CoupledModel`].
pub trait CoupledSnapshot {
    /// Captures `state` (and, when `ws` is given and warm-started pressure
    /// projection is enabled, the carry-over potential φ) into `snap`,
    /// reusing its buffers. Allocation-free once `snap` is warm.
    fn snapshot_into(
        &self,
        state: &CoupledState,
        ws: Option<&CoupledWorkspace>,
        snap: &mut Snapshot,
    );

    /// Restores `state` (and the workspace's warm-start potential, when
    /// `ws` is given) from `snap`, writing into the existing buffers.
    ///
    /// # Errors
    /// Missing records, size mismatches, or a fingerprint from a different
    /// model configuration.
    fn restore_from(
        &self,
        state: &mut CoupledState,
        ws: Option<&mut CoupledWorkspace>,
        snap: &Snapshot,
    ) -> Result<()>;
}

impl CoupledSnapshot for CoupledModel {
    fn snapshot_into(
        &self,
        state: &CoupledState,
        ws: Option<&CoupledWorkspace>,
        snap: &mut Snapshot,
    ) {
        model_fingerprint_into(self, snap.record_mut(FINGERPRINT));
        snap.put_slice("fire/psi", state.fire.psi.as_slice());
        encode_tig_into(state.fire.tig.as_slice(), snap.record_mut("fire/tig"));
        snap.put_scalar("fire/time", state.fire.time);
        snap.put_slice("atmos/u", &state.atmos.u);
        snap.put_slice("atmos/v", &state.atmos.v);
        snap.put_slice("atmos/w", &state.atmos.w);
        snap.put_slice("atmos/theta", &state.atmos.theta);
        snap.put_slice("atmos/qv", &state.atmos.qv);
        snap.put_scalar("atmos/time", state.atmos.time);
        if self.atmos.params.pressure_warm_start {
            if let Some(ws) = ws {
                snap.put_slice("atmos/phi_warm", ws.atmos.warm_phi());
            }
        }
    }

    fn restore_from(
        &self,
        state: &mut CoupledState,
        ws: Option<&mut CoupledWorkspace>,
        snap: &Snapshot,
    ) -> Result<()> {
        check_model_fingerprint(self, snap)?;
        let fg = self.fire_grid;
        let psi = snap.get("fire/psi")?;
        let tig = snap.get("fire/tig")?;
        if psi.len() != fg.len() || tig.len() != fg.len() {
            return Err(ObsError::BadStateFile("fire field size mismatch".into()));
        }
        // Every node is overwritten below; skip the memset.
        state.fire.psi.resize_no_zero(fg);
        state.fire.psi.as_mut_slice().copy_from_slice(psi);
        state.fire.tig.resize_no_zero(fg);
        decode_tig_into(tig, state.fire.tig.as_mut_slice());
        state.fire.time = snap.get_scalar("fire/time")?;

        let ag = self.atmos.grid;
        let n_uv = ag.nx * ag.ny * ag.nz;
        let n_w = ag.nx * ag.ny * (ag.nz + 1);
        let n_c = ag.n_cells();
        for (name, dst, want) in [
            ("atmos/u", &mut state.atmos.u, n_uv),
            ("atmos/v", &mut state.atmos.v, n_uv),
            ("atmos/w", &mut state.atmos.w, n_w),
            ("atmos/theta", &mut state.atmos.theta, n_c),
            ("atmos/qv", &mut state.atmos.qv, n_c),
        ] {
            let rec = snap.get(name)?;
            if rec.len() != want {
                return Err(ObsError::BadStateFile(format!("{name} size mismatch")));
            }
            dst.clear();
            dst.extend_from_slice(rec);
        }
        state.atmos.grid = ag;
        state.atmos.time = snap.get_scalar("atmos/time")?;

        if self.atmos.params.pressure_warm_start {
            if let Some(ws) = ws {
                ws.atmos.set_warm_phi(snap.get("atmos/phi_warm")?);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statefile::StateFile;
    use wildfire_atmos::state::AtmosGrid;
    use wildfire_atmos::AtmosParams;
    use wildfire_fire::ignition::IgnitionShape;
    use wildfire_fuel::FuelCategory;

    fn model(warm: bool) -> CoupledModel {
        let grid = AtmosGrid {
            nx: 6,
            ny: 6,
            nz: 4,
            dx: 60.0,
            dy: 60.0,
            dz: 50.0,
        };
        let params = AtmosParams {
            pressure_warm_start: warm,
            ..AtmosParams::default()
        };
        CoupledModel::new(grid, params, FuelCategory::ShortGrass, 4).unwrap()
    }

    fn ignited(m: &CoupledModel) -> CoupledState {
        m.ignite(
            &[IgnitionShape::Circle {
                center: (150.0, 150.0),
                radius: 25.0,
            }],
            0.0,
        )
    }

    #[test]
    fn bytes_roundtrip_bitwise() {
        let mut snap = Snapshot::new();
        snap.put_slice("a", &[1.0, -2.5, f64::MAX, f64::MIN_POSITIVE]);
        snap.put_slice("b/empty", &[]);
        snap.put_u64("rng", 0xDEAD_BEEF_0123_4567);
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.get_u64("rng").unwrap(), 0xDEAD_BEEF_0123_4567);
    }

    #[test]
    fn from_bytes_into_reuses_and_drops_stale_records() {
        let mut a = Snapshot::new();
        a.put_slice("x", &[1.0, 2.0]);
        let bytes = a.to_bytes();
        let mut target = Snapshot::new();
        target.put_slice("x", &[9.0; 8]);
        target.put_slice("stale", &[3.0]);
        Snapshot::from_bytes_into(&bytes, &mut target).unwrap();
        assert_eq!(target, a);
    }

    #[test]
    fn cross_version_headers_rejected_both_ways() {
        // v1 reader on v2 bytes.
        let mut snap = Snapshot::new();
        snap.put_slice("x", &[1.0]);
        let err = StateFile::from_bytes(&snap.to_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("unsupported version 2"),
            "got: {err}"
        );
        // v2 reader on v1 bytes.
        let mut sf = StateFile::new();
        sf.put("x", vec![1.0]);
        let err = Snapshot::from_bytes(&sf.to_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("unsupported snapshot version 1"),
            "got: {err}"
        );
    }

    #[test]
    fn rejects_truncation_corruption_and_trailing() {
        let mut snap = Snapshot::new();
        snap.put_slice("x", &[1.0, 2.0, 3.0]);
        let bytes = snap.to_bytes();
        for cut in 1..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..bytes.len() - cut]).is_err(),
                "truncation by {cut} must be rejected"
            );
        }
        let mut bad = bytes.clone();
        bad[0] = b'Z';
        assert!(Snapshot::from_bytes(&bad).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(Snapshot::from_bytes(&long).is_err());
    }

    #[test]
    fn corrupt_length_cannot_balloon_memory() {
        let mut snap = Snapshot::new();
        snap.put_slice("x", &[1.0]);
        let mut bytes = snap.to_bytes();
        // The element-count u64 sits after magic(4)+ver(4)+count(4)+
        // namelen(4)+name(1).
        let len_at = 4 + 4 + 4 + 4 + 1;
        bytes[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Snapshot::from_bytes(&bytes).is_err());
    }

    #[test]
    fn coupled_snapshot_roundtrip_bitwise() {
        for warm in [false, true] {
            let m = model(warm);
            let mut state = ignited(&m);
            let mut ws = CoupledWorkspace::new();
            m.run_ws(&mut state, 2.0, 0.5, &mut ws, |_, _| {}).unwrap();

            let mut snap = Snapshot::new();
            m.snapshot_into(&state, Some(&ws), &mut snap);
            let snap = Snapshot::from_bytes(&snap.to_bytes()).unwrap();

            let mut restored = m.ignite(&[], 0.0);
            let mut ws2 = CoupledWorkspace::new();
            m.restore_from(&mut restored, Some(&mut ws2), &snap)
                .unwrap();
            assert_eq!(state.fire.psi, restored.fire.psi, "warm = {warm}");
            assert_eq!(state.fire.tig, restored.fire.tig, "warm = {warm}");
            assert_eq!(state.atmos, restored.atmos, "warm = {warm}");
            if warm {
                assert_eq!(ws.atmos.warm_phi(), ws2.atmos.warm_phi());
            }

            // Continue both and require bitwise agreement.
            m.run_ws(&mut state, 4.0, 0.5, &mut ws, |_, _| {}).unwrap();
            m.run_ws(&mut restored, 4.0, 0.5, &mut ws2, |_, _| {})
                .unwrap();
            assert_eq!(state.fire.psi, restored.fire.psi, "warm = {warm}");
            assert_eq!(state.atmos, restored.atmos, "warm = {warm}");
        }
    }

    #[test]
    fn restore_rejects_wrong_model() {
        let m = model(false);
        let state = ignited(&m);
        let mut snap = Snapshot::new();
        m.snapshot_into(&state, None, &mut snap);

        let other = CoupledModel::new(
            AtmosGrid {
                nx: 7,
                ny: 6,
                nz: 4,
                dx: 60.0,
                dy: 60.0,
                dz: 50.0,
            },
            AtmosParams::default(),
            FuelCategory::ShortGrass,
            4,
        )
        .unwrap();
        let mut target = other.ignite(&[], 0.0);
        let err = other.restore_from(&mut target, None, &snap).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "got: {err}");
    }

    #[test]
    fn snapshot_into_is_allocation_free_once_warm() {
        // Warm the snapshot, then re-capture into it: record names and
        // payload capacities must be reused (checked indirectly — equal
        // capacities, equal contents; the bench crate's counting-allocator
        // suite pins the stronger no-alloc property).
        let m = model(true);
        let mut state = ignited(&m);
        let mut ws = CoupledWorkspace::new();
        m.run_ws(&mut state, 1.0, 0.5, &mut ws, |_, _| {}).unwrap();
        let mut snap = Snapshot::new();
        m.snapshot_into(&state, Some(&ws), &mut snap);
        let caps: Vec<usize> = snap.records.values().map(|v| v.capacity()).collect();
        let ptrs: Vec<*const f64> = snap.records.values().map(|v| v.as_ptr()).collect();
        m.snapshot_into(&state, Some(&ws), &mut snap);
        let caps2: Vec<usize> = snap.records.values().map(|v| v.capacity()).collect();
        let ptrs2: Vec<*const f64> = snap.records.values().map(|v| v.as_ptr()).collect();
        assert_eq!(caps, caps2);
        assert_eq!(ptrs, ptrs2, "payload buffers must be reused in place");
    }

    #[test]
    fn disk_roundtrip_atomic() {
        let dir = std::env::temp_dir().join(format!("wf_snapshot_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.wfst");
        let mut snap = Snapshot::new();
        snap.put_slice("v", &(0..500).map(|i| i as f64 * 0.25).collect::<Vec<_>>());
        snap.write(&path).unwrap();
        assert!(!path.with_extension("tmp").exists());
        let back = Snapshot::read(&path).unwrap();
        assert_eq!(snap, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unburned_sentinel_survives() {
        let m = model(false);
        let state = ignited(&m);
        assert!(state.fire.tig.as_slice().contains(&UNBURNED));
        let mut snap = Snapshot::new();
        m.snapshot_into(&state, None, &mut snap);
        assert!(snap.get("fire/tig").unwrap().iter().all(|t| t.is_finite()));
        let mut restored = m.ignite(&[], 0.0);
        m.restore_from(&mut restored, None, &snap).unwrap();
        assert_eq!(state.fire.tig, restored.fire.tig);
    }
}
