//! Binary disk state exchange (Fig. 2).
//!
//! "The ensemble of model states is maintained in disk files. The
//! observation function takes as input the disk files and delivers
//! synthetic data also in disk files. The EnKF inputs the synthetic data
//! and the real data, and modifies the files with the ensemble states."
//!
//! Format: magic `WFST`, version `u32`, record count `u32`, then per record
//! a length-prefixed UTF-8 name, an element count `u64`, and little-endian
//! `f64` payload. Writes go to a temporary file in the same directory and
//! are atomically renamed into place, so concurrent readers never observe a
//! torn state. A versioned, named-record layout lets the observation
//! function extract "individual subvectors corresponding to the most common
//! variables" (§3.1) without knowing the producing code.

use crate::{ObsError, Result};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;
use wildfire_fire::FireState;
use wildfire_grid::{Field2, Grid2};

/// File magic.
pub const MAGIC: [u8; 4] = *b"WFST";
/// Current format version.
pub const VERSION: u32 = 1;

/// An in-memory collection of named `f64` arrays — one model state on its
/// way to or from disk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateFile {
    records: BTreeMap<String, Vec<f64>>,
}

impl StateFile {
    /// Empty state file.
    pub fn new() -> Self {
        StateFile::default()
    }

    /// Inserts or replaces a record ("individual subvectors … are extracted
    /// or replaced", §3.1).
    pub fn put(&mut self, name: impl Into<String>, data: Vec<f64>) {
        self.records.insert(name.into(), data);
    }

    /// Borrows a record.
    ///
    /// # Errors
    /// [`ObsError::MissingRecord`] when absent.
    pub fn get(&self, name: &str) -> Result<&[f64]> {
        self.records
            .get(name)
            .map(|v| v.as_slice())
            .ok_or_else(|| ObsError::MissingRecord(name.to_string()))
    }

    /// Record names in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.records.keys().map(|s| s.as_str()).collect()
    }

    /// Serializes to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for (name, data) in &self.records {
            let name_bytes = name.as_bytes();
            out.extend_from_slice(&(name_bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(name_bytes);
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            for v in data {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Parses from bytes.
    ///
    /// # Errors
    /// [`ObsError::BadStateFile`] on any structural problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > bytes.len() {
                return Err(ObsError::BadStateFile("truncated file".into()));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let magic = take(&mut pos, 4)?;
        if magic != MAGIC {
            return Err(ObsError::BadStateFile("bad magic".into()));
        }
        let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ObsError::BadStateFile(format!(
                "unsupported version {version}"
            )));
        }
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        let mut records = BTreeMap::new();
        for _ in 0..count {
            let name_len =
                u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
            let name = std::str::from_utf8(take(&mut pos, name_len)?)
                .map_err(|_| ObsError::BadStateFile("non-utf8 record name".into()))?
                .to_string();
            let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
            let payload = take(&mut pos, len * 8)?;
            let mut data = Vec::with_capacity(len);
            for chunk in payload.chunks_exact(8) {
                data.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
            }
            records.insert(name, data);
        }
        if pos != bytes.len() {
            return Err(ObsError::BadStateFile("trailing bytes".into()));
        }
        Ok(StateFile { records })
    }

    /// Writes atomically: serialize to `path.tmp`, then rename onto `path`.
    ///
    /// # Errors
    /// I/O failures.
    pub fn write(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and parses a state file.
    ///
    /// # Errors
    /// I/O and format failures.
    pub fn read(path: &Path) -> Result<Self> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

/// The software layer of §3.1 that hides the producing model: anything that
/// can round-trip itself through a [`StateFile`].
pub trait StateCodec: Sized {
    /// Encodes into named records.
    fn encode(&self, file: &mut StateFile);
    /// Decodes from named records.
    ///
    /// # Errors
    /// Missing or malformed records.
    fn decode(file: &StateFile) -> Result<Self>;
}

impl StateCodec for FireState {
    fn encode(&self, file: &mut StateFile) {
        let g = self.psi.grid();
        file.put(
            "fire/grid",
            vec![g.nx as f64, g.ny as f64, g.dx, g.dy, g.origin.0, g.origin.1],
        );
        file.put("fire/psi", self.psi.as_slice().to_vec());
        // Encode UNBURNED as a sentinel that is exactly representable.
        file.put(
            "fire/tig",
            self.tig
                .as_slice()
                .iter()
                .map(|&t| if t.is_finite() { t } else { f64::MAX })
                .collect(),
        );
        file.put("fire/time", vec![self.time]);
    }

    fn decode(file: &StateFile) -> Result<Self> {
        let gdesc = file.get("fire/grid")?;
        if gdesc.len() != 6 {
            return Err(ObsError::BadStateFile(
                "fire/grid must have 6 entries".into(),
            ));
        }
        let grid = Grid2::with_origin(
            gdesc[0] as usize,
            gdesc[1] as usize,
            gdesc[2],
            gdesc[3],
            (gdesc[4], gdesc[5]),
        )
        .map_err(|e| ObsError::BadStateFile(e.to_string()))?;
        let psi = file.get("fire/psi")?;
        let tig = file.get("fire/tig")?;
        if psi.len() != grid.len() || tig.len() != grid.len() {
            return Err(ObsError::BadStateFile("field size mismatch".into()));
        }
        let time = *file
            .get("fire/time")?
            .first()
            .ok_or_else(|| ObsError::BadStateFile("empty fire/time".into()))?;
        Ok(FireState {
            psi: Field2::from_vec(grid, psi.to_vec()),
            tig: Field2::from_vec(
                grid,
                tig.iter()
                    .map(|&t| {
                        if t >= f64::MAX {
                            wildfire_fire::UNBURNED
                        } else {
                            t
                        }
                    })
                    .collect(),
            ),
            time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wildfire_fire::ignition::IgnitionShape;

    #[test]
    fn bytes_roundtrip() {
        let mut sf = StateFile::new();
        sf.put("a", vec![1.0, -2.5, f64::MAX]);
        sf.put("b/c", vec![]);
        let back = StateFile::from_bytes(&sf.to_bytes()).unwrap();
        assert_eq!(sf, back);
        assert_eq!(back.names(), vec!["a", "b/c"]);
    }

    #[test]
    fn rejects_corruption() {
        let mut sf = StateFile::new();
        sf.put("x", vec![1.0]);
        let mut bytes = sf.to_bytes();
        bytes[0] = b'Z';
        assert!(matches!(
            StateFile::from_bytes(&bytes),
            Err(ObsError::BadStateFile(_))
        ));
        let bytes2 = sf.to_bytes();
        assert!(StateFile::from_bytes(&bytes2[..bytes2.len() - 3]).is_err());
        let mut bytes3 = sf.to_bytes();
        bytes3.push(0);
        assert!(StateFile::from_bytes(&bytes3).is_err());
    }

    #[test]
    fn missing_record_error() {
        let sf = StateFile::new();
        assert!(matches!(sf.get("nope"), Err(ObsError::MissingRecord(_))));
    }

    #[test]
    fn disk_roundtrip_atomic() {
        let dir = std::env::temp_dir().join("wildfire_statefile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("member_000.wfst");
        let mut sf = StateFile::new();
        sf.put("v", (0..1000).map(|i| i as f64 * 0.5).collect());
        sf.write(&path).unwrap();
        let back = StateFile::read(&path).unwrap();
        assert_eq!(sf, back);
        // No temporary file left behind.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fire_state_codec_roundtrip() {
        let grid = Grid2::new(21, 17, 3.0, 3.0).unwrap();
        let state = FireState::ignite(
            grid,
            &[IgnitionShape::Circle {
                center: (30.0, 24.0),
                radius: 9.0,
            }],
            12.5,
        );
        let mut sf = StateFile::new();
        state.encode(&mut sf);
        let back = FireState::decode(&sf).unwrap();
        assert_eq!(state.psi, back.psi);
        assert_eq!(state.tig, back.tig);
        assert_eq!(state.time, back.time);
        // UNBURNED survives the sentinel encoding.
        assert_eq!(back.tig.get(0, 0), wildfire_fire::UNBURNED);
    }

    #[test]
    fn fire_state_codec_rejects_bad_sizes() {
        let grid = Grid2::new(4, 4, 1.0, 1.0).unwrap();
        let state = FireState::unburned(grid);
        let mut sf = StateFile::new();
        state.encode(&mut sf);
        sf.put("fire/psi", vec![0.0; 3]); // wrong length
        assert!(FireState::decode(&sf).is_err());
    }
}
