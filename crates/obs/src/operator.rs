//! The observation-function seam of §3.1: [`ObservationOperator`].
//!
//! The paper insists that "the model, the observation function, and the
//! EnKF are in separate executables" and that a thin software layer insulate
//! the assimilation components from where the data comes from. This module
//! is that layer for in-process use: an operator maps a model state to the
//! vector of values the instrument would report (`h(x)`), and declares the
//! error variances of the corresponding real measurements. The filter sees
//! only flat `f64` vectors — it cannot tell a strided ψ grid from a weather
//! station from a thermal-image pixel, which is exactly the point.
//!
//! Concrete operators:
//!
//! * [`StridedPsi`] — the identical-twin baseline: ψ at every `stride`-th
//!   fire-mesh node (by linear node index, reproducing the seed's
//!   `obs_stride` convention bit-for-bit);
//! * [`StationTemperatures`] — 2-m temperature at each station of a
//!   network, through [`WeatherStation::observe_with`] (cell lookup +
//!   biquadratic sampling, §3.1);
//! * [`ImagePixels`] — radiance at every pixel of a synthetic infrared
//!   image rendered from the member state (§3.2).

use crate::image_obs::{ImageObsScratch, ImageObservation};
use crate::station::{SurfaceFields, WeatherStation};
use crate::{ObsError, Result};
use wildfire_core::{CoupledModel, CoupledState};
use wildfire_fire::FireState;
use wildfire_grid::{Field2, Grid2};

/// Shared scratch for operator evaluation. One scratch serves any mix of
/// operators (each uses only the parts it needs); hold one per worker and
/// reuse it across states so steady-state evaluation is allocation-free —
/// including the synthetic-image renderer, whose scene buffers live in the
/// [`ImageObsScratch`] half.
#[derive(Debug, Clone, Default)]
pub struct ObsScratch {
    /// Near-surface fields for station networks, evaluated once per state.
    pub surface: SurfaceFields,
    /// Rendering buffers for image operators, reused across members.
    pub image: ImageObsScratch,
}

impl ObsScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An observation function `h`: maps a coupled model state to the vector a
/// real instrument would report, plus the error variances of those
/// measurements. Implementations must be deterministic — the ensemble
/// filter relies on `h` being the same function for every member. The
/// `Send + Sync` bound lets one operator serve every worker of a
/// member-parallel packing fan-out (and move into a background service
/// thread); evaluation takes `&self`, so implementations are naturally
/// shareable.
pub trait ObservationOperator: Send + Sync {
    /// Number of scalar observations this operator produces.
    fn dim(&self) -> usize;

    /// A short human-readable tag for diagnostics ("strided-psi", …).
    fn name(&self) -> &'static str;

    /// Evaluates `h(state)` into `out` (`out.len() == self.dim()`), using
    /// caller-provided scratch — the workspace-friendly form the batched
    /// [`crate::ObsSet::pack_into`] drives.
    ///
    /// # Errors
    /// Operator/state mismatches and rendering failures.
    fn observe_into_ws(
        &self,
        state: &CoupledState,
        out: &mut [f64],
        scratch: &mut ObsScratch,
    ) -> Result<()>;

    /// Writes the measurement-error variances (the diagonal of `R`) into
    /// `out` (`out.len() == self.dim()`).
    fn variances_into(&self, out: &mut [f64]);

    /// Convenience [`ObservationOperator::observe_into_ws`] with a fresh
    /// scratch (allocates; use the `_ws` form in loops).
    ///
    /// # Errors
    /// As [`ObservationOperator::observe_into_ws`].
    fn observe_into(&self, state: &CoupledState, out: &mut [f64]) -> Result<()> {
        self.observe_into_ws(state, out, &mut ObsScratch::new())
    }

    /// Allocating convenience: evaluates `h(state)` into a fresh vector.
    ///
    /// # Errors
    /// As [`ObservationOperator::observe_into_ws`].
    fn observe(&self, state: &CoupledState) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.dim()];
        self.observe_into(state, &mut out)?;
        Ok(out)
    }

    /// Scatters this operator's measurement vector back onto a full
    /// fire-mesh ψ field, when the measurements are a (possibly subsampled)
    /// ψ grid. Returns `false` (leaving `out` untouched) for operators
    /// without a gridded-ψ interpretation. The morphing-EnKF entry point
    /// uses this to turn gridded data streams into the field-valued
    /// observation its registration step needs.
    fn scatter_psi(&self, _values: &[f64], _out: &mut Field2) -> bool {
        false
    }
}

/// Identical-twin data synthesis for any operator: evaluates `h(truth)` and
/// perturbs each component with Gaussian noise drawn from the operator's
/// own error variances — the "real data" generator of the paper's Fig. 4
/// setup, instrument-agnostic. Appends `op.dim()` values to `out`.
///
/// # Errors
/// Operator failures.
pub fn synthesize_measurements(
    op: &dyn ObservationOperator,
    truth: &CoupledState,
    rng: &mut wildfire_math::GaussianSampler,
    out: &mut Vec<f64>,
) -> Result<()> {
    let start = out.len();
    let d = op.dim();
    out.resize(start + 2 * d, 0.0);
    // Lay out [h(truth) | variances] in the appended block, then collapse.
    let (obs, var) = out[start..].split_at_mut(d);
    if let Err(e) = op.observe_into(truth, obs) {
        // Keep the append-only contract: a failed stream must not leave
        // scratch entries behind (callers accumulate blocks in one vector).
        out.truncate(start);
        return Err(e);
    }
    op.variances_into(var);
    for i in 0..d {
        out[start + i] += rng.normal(0.0, out[start + d + i].sqrt());
    }
    out.truncate(start + d);
    Ok(())
}

/// ψ observed at every `stride`-th fire-mesh node (linear node index) — the
/// operator behind the seed's `obs_stride` analysis paths, now explicit.
/// With `stride == 1` this is a dense gridded ψ observation, the
/// identical-twin stand-in for a georegistered thermal map.
#[derive(Debug, Clone, PartialEq)]
pub struct StridedPsi {
    grid: Grid2,
    stride: usize,
    sigma: f64,
}

impl StridedPsi {
    /// Creates the operator over `grid` with observation-error std `sigma`.
    /// A `stride` of 0 is clamped to 1 (the seed convention).
    pub fn new(grid: Grid2, stride: usize, sigma: f64) -> Self {
        StridedPsi {
            grid,
            stride: stride.max(1),
            sigma,
        }
    }

    /// The fire grid this operator samples.
    pub fn grid(&self) -> Grid2 {
        self.grid
    }

    /// The node stride (≥ 1).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Linear fire-mesh node indices of the observed samples.
    pub fn node_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.grid.len()).step_by(self.stride)
    }

    /// Samples a bare fire state (used both by the member-side observation
    /// and by identical-twin data synthesis from a truth state).
    ///
    /// # Errors
    /// [`ObsError::Operator`] when the state lives on a different grid.
    pub fn observe_fire_into(&self, fire: &FireState, out: &mut [f64]) -> Result<()> {
        if fire.psi.grid() != self.grid {
            return Err(ObsError::Operator("strided-psi grid mismatch"));
        }
        debug_assert_eq!(out.len(), self.dim());
        let psi = fire.psi.as_slice();
        for (o, idx) in out.iter_mut().zip(self.node_indices()) {
            *o = psi[idx];
        }
        Ok(())
    }

    /// Appends the identical-twin measurement vector for a truth fire state
    /// (noise-free truth ψ at the observed nodes) to `out`.
    ///
    /// # Errors
    /// [`ObsError::Operator`] on grid mismatch.
    pub fn measure_truth_into(&self, truth: &FireState, out: &mut Vec<f64>) -> Result<()> {
        let start = out.len();
        out.resize(start + self.dim(), 0.0);
        let result = self.observe_fire_into(truth, &mut out[start..]);
        if result.is_err() {
            // Append-only contract: a failed stream must not leave scratch
            // entries behind (callers accumulate blocks in one vector).
            out.truncate(start);
        }
        result
    }
}

impl ObservationOperator for StridedPsi {
    fn dim(&self) -> usize {
        self.grid.len().div_ceil(self.stride)
    }

    fn name(&self) -> &'static str {
        "strided-psi"
    }

    fn observe_into_ws(
        &self,
        state: &CoupledState,
        out: &mut [f64],
        _scratch: &mut ObsScratch,
    ) -> Result<()> {
        self.observe_fire_into(&state.fire, out)
    }

    fn variances_into(&self, out: &mut [f64]) {
        out.fill(self.sigma * self.sigma);
    }

    fn scatter_psi(&self, values: &[f64], out: &mut Field2) -> bool {
        if values.len() != self.dim() {
            return false;
        }
        // Nearest-sample fill in linear-index space: exact for stride 1;
        // for coarser strides every node takes the nearest observed sample,
        // which preserves the burned-region geometry the morphing
        // registration keys on.
        out.resize_zeroed(self.grid);
        let slice = out.as_mut_slice();
        for (k, v) in slice.iter_mut().enumerate() {
            let sample = ((k + self.stride / 2) / self.stride).min(values.len() - 1);
            *v = values[sample];
        }
        true
    }
}

/// 2-m temperature reported by each station of a weather-station network —
/// the §3.1 station observation wrapped as an operator. The surface fields
/// are evaluated once per state (through the scratch) and sampled
/// biquadratically per station, identically to [`WeatherStation::observe`].
#[derive(Debug, Clone)]
pub struct StationTemperatures {
    stations: Vec<WeatherStation>,
    theta0: f64,
    sigma: f64,
}

impl StationTemperatures {
    /// Creates the operator: `theta0` is the reference surface temperature
    /// (K), `sigma` the report-error std (K).
    pub fn new(stations: Vec<WeatherStation>, theta0: f64, sigma: f64) -> Self {
        StationTemperatures {
            stations,
            theta0,
            sigma,
        }
    }

    /// The wrapped station network.
    pub fn stations(&self) -> &[WeatherStation] {
        &self.stations
    }

    /// The reference surface temperature (K).
    pub fn theta0(&self) -> f64 {
        self.theta0
    }
}

impl ObservationOperator for StationTemperatures {
    fn dim(&self) -> usize {
        self.stations.len()
    }

    fn name(&self) -> &'static str {
        "station-temperatures"
    }

    fn observe_into_ws(
        &self,
        state: &CoupledState,
        out: &mut [f64],
        scratch: &mut ObsScratch,
    ) -> Result<()> {
        debug_assert_eq!(out.len(), self.dim());
        // Evaluate and sample only what this operator reports — the
        // vapor/wind sweeps and the fireline proximity scan of the full
        // station observation would be discarded, and this runs once per
        // member per packing.
        scratch.surface.evaluate_temperature(state, self.theta0);
        for (o, s) in out.iter_mut().zip(self.stations.iter()) {
            let (x, y) = s.location;
            *o = scratch.surface.temperature.sample_biquadratic(x, y);
        }
        Ok(())
    }

    fn variances_into(&self, out: &mut [f64]) {
        out.fill(self.sigma * self.sigma);
    }
}

/// Radiance at every pixel of the synthetic infrared image rendered from
/// the member state (§3.2) — [`ImageObservation`] wrapped as an operator.
/// Rendering draws every buffer (wind transfer, scene intermediates, the
/// image itself) from the [`ObsScratch`], so packing an imagery stream is
/// as steady-state allocation-free as the grid/station operators.
#[derive(Debug, Clone)]
pub struct ImagePixels {
    model: CoupledModel,
    image: ImageObservation,
    sigma: f64,
}

impl ImagePixels {
    /// Creates the operator from a camera/scene binding and the coupled
    /// model used to render member states. `sigma` is the per-pixel
    /// radiance-error std (W·sr⁻¹·m⁻²).
    pub fn new(model: CoupledModel, image: ImageObservation, sigma: f64) -> Self {
        ImagePixels {
            model,
            image,
            sigma,
        }
    }

    /// Camera covering the model's fire domain at `pixels` resolution from
    /// `altitude` (the paper's reference: ~3000 m).
    pub fn over_fire_domain(model: CoupledModel, altitude: f64, pixels: usize, sigma: f64) -> Self {
        let image = ImageObservation::over_fire_domain(&model, altitude, pixels);
        ImagePixels {
            model,
            image,
            sigma,
        }
    }

    /// The wrapped camera/scene binding.
    pub fn image_observation(&self) -> &ImageObservation {
        &self.image
    }

    /// Synthesizes a noisy identical-twin "real" image from a truth state
    /// and appends its pixels to `out`.
    ///
    /// # Errors
    /// Rendering failures.
    pub fn measure_truth_into(
        &self,
        truth: &CoupledState,
        noise_rel: f64,
        rng: &mut wildfire_math::GaussianSampler,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let img = self
            .image
            .real_image_from_truth(&self.model, truth, noise_rel, rng)?;
        out.extend_from_slice(&img.data);
        Ok(())
    }
}

impl ObservationOperator for ImagePixels {
    fn dim(&self) -> usize {
        self.image.camera.pixels.0 * self.image.camera.pixels.1
    }

    fn name(&self) -> &'static str {
        "image-pixels"
    }

    fn observe_into_ws(
        &self,
        state: &CoupledState,
        out: &mut [f64],
        scratch: &mut ObsScratch,
    ) -> Result<()> {
        debug_assert_eq!(out.len(), self.dim());
        self.image
            .synthetic_image_into(&self.model, state, &mut scratch.image)?;
        out.copy_from_slice(&scratch.image.rendered.data);
        Ok(())
    }

    fn variances_into(&self, out: &mut [f64]) {
        out.fill(self.sigma * self.sigma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wildfire_atmos::state::AtmosGrid;
    use wildfire_atmos::AtmosParams;
    use wildfire_fire::ignition::IgnitionShape;
    use wildfire_fuel::FuelCategory;

    fn model() -> CoupledModel {
        CoupledModel::new(
            AtmosGrid {
                nx: 6,
                ny: 6,
                nz: 4,
                dx: 60.0,
                dy: 60.0,
                dz: 50.0,
            },
            AtmosParams::default(),
            FuelCategory::ShortGrass,
            4,
        )
        .unwrap()
    }

    fn burning(m: &CoupledModel) -> CoupledState {
        m.ignite(
            &[IgnitionShape::Circle {
                center: (150.0, 150.0),
                radius: 30.0,
            }],
            0.0,
        )
    }

    #[test]
    fn strided_psi_reproduces_seed_convention() {
        let m = model();
        let s = burning(&m);
        let op = StridedPsi::new(m.fire_grid, 7, 2.0);
        let obs = op.observe(&s).unwrap();
        let psi = s.fire.psi.as_slice();
        let expected: Vec<f64> = (0..m.fire_grid.len()).step_by(7).map(|i| psi[i]).collect();
        assert_eq!(obs, expected, "must match the seed's obs_stride sampling");
        assert_eq!(op.dim(), expected.len());
        let mut var = vec![0.0; op.dim()];
        op.variances_into(&mut var);
        assert!(var.iter().all(|&v| v == 4.0));
    }

    #[test]
    fn strided_psi_rejects_wrong_grid() {
        let m = model();
        let s = burning(&m);
        let other = Grid2::new(9, 9, 5.0, 5.0).unwrap();
        let op = StridedPsi::new(other, 3, 1.0);
        assert!(op.observe(&s).is_err());
    }

    #[test]
    fn strided_psi_scatter_is_exact_at_stride_one() {
        let m = model();
        let s = burning(&m);
        let op = StridedPsi::new(m.fire_grid, 1, 1.0);
        let obs = op.observe(&s).unwrap();
        let mut field = Field2::default();
        assert!(op.scatter_psi(&obs, &mut field));
        assert_eq!(field.as_slice(), s.fire.psi.as_slice());
    }

    #[test]
    fn strided_psi_scatter_preserves_burned_region_coarsely() {
        let m = model();
        let s = burning(&m);
        let op = StridedPsi::new(m.fire_grid, 5, 1.0);
        let obs = op.observe(&s).unwrap();
        let mut field = Field2::default();
        assert!(op.scatter_psi(&obs, &mut field));
        // The scattered field must agree in sign with the truth on the
        // overwhelming majority of nodes (nearest-sample fill).
        let agree = field
            .as_slice()
            .iter()
            .zip(s.fire.psi.as_slice())
            .filter(|(a, b)| (**a < 0.0) == (**b < 0.0))
            .count();
        let frac = agree as f64 / field.as_slice().len() as f64;
        assert!(frac > 0.9, "sign agreement {frac}");
    }

    #[test]
    fn station_operator_matches_station_observe() {
        let m = model();
        let s = burning(&m);
        let stations = vec![
            WeatherStation::new("A", 150.0, 150.0),
            WeatherStation::new("B", 80.0, 220.0),
        ];
        let op = StationTemperatures::new(stations.clone(), 300.0, 1.0);
        let obs = op.observe(&s).unwrap();
        for (o, st) in obs.iter().zip(stations.iter()) {
            assert_eq!(*o, st.observe(&s, 300.0).temperature);
        }
        assert!(!op.scatter_psi(&obs, &mut Field2::default()));
    }

    #[test]
    fn image_operator_dim_matches_resolution() {
        let m = model();
        let s = burning(&m);
        let op = ImagePixels::over_fire_domain(m, 3000.0, 8, 0.5);
        assert_eq!(op.dim(), 64);
        let obs = op.observe(&s).unwrap();
        assert_eq!(obs.len(), 64);
        assert!(obs.iter().all(|v| v.is_finite()));
    }
}
