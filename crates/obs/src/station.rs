//! Weather-station observations (§3.1).
//!
//! "Consider an example of a weather station that reports its location, a
//! timestamp, temperature, wind velocity, and humidity. … For a given grid,
//! we have to determine in which cell the weather station is located, which
//! is done using linear interpolation of the location. The data is
//! determined at relevant grid points using biquadratic interpolation. We
//! compare the computed results with the weather station data. We determine
//! if a fireline is in the cell (or neighboring ones) … to see if there
//! really is a fire in the cell."

use wildfire_core::CoupledState;
use wildfire_fire::UNBURNED;
use wildfire_grid::Field2;

/// A fixed ground station.
#[derive(Debug, Clone, PartialEq)]
pub struct WeatherStation {
    /// Station identifier.
    pub id: String,
    /// World location (m).
    pub location: (f64, f64),
}

/// One report from a station (real data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationReport {
    /// Observation time (s, simulation clock).
    pub time: f64,
    /// 2-m air temperature (K).
    pub temperature: f64,
    /// Horizontal wind (m/s).
    pub wind: (f64, f64),
    /// Relative humidity (fraction).
    pub humidity: f64,
}

/// Model equivalent of a station report, plus the fire-proximity check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationObservation {
    /// Model 2-m temperature at the station (K).
    pub temperature: f64,
    /// Model wind at the station (m/s).
    pub wind: (f64, f64),
    /// Model humidity proxy at the station (fraction).
    pub humidity: f64,
    /// Whether the fireline passes through the station's cell or one of its
    /// neighbors.
    pub fire_nearby: bool,
    /// The atmosphere cell containing the station.
    pub cell: (usize, usize),
}

/// Reusable near-surface fields shared by every station of a network when
/// observing one state: 2-m temperature, vapor, and the cell-centered
/// horizontal wind on the atmosphere's horizontal grid. Building these once
/// per state (instead of once per station, as the seed did) makes network
/// evaluation `O(grid + stations)` and allocation-free in steady state.
#[derive(Debug, Clone, Default)]
pub struct SurfaceFields {
    /// 2-m air temperature `θ0 + θ'` (K).
    pub temperature: Field2,
    /// Water-vapor perturbation (kg/kg).
    pub qv: Field2,
    /// Cell-centered surface wind, `u` component (m/s).
    pub u: Field2,
    /// Cell-centered surface wind, `v` component (m/s).
    pub v: Field2,
}

impl SurfaceFields {
    /// An empty scratch; fields are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates the surface fields of `state` into this scratch
    /// (allocation-free once the buffers are sized).
    pub fn evaluate(&mut self, state: &CoupledState, theta0: f64) {
        let agrid = state.atmos.grid;
        let h = agrid.horizontal();
        self.evaluate_temperature(state, theta0);
        self.qv.resize_zeroed(h);
        self.u.resize_zeroed(h);
        self.v.resize_zeroed(h);
        for j in 0..agrid.ny {
            for i in 0..agrid.nx {
                self.qv.set(i, j, state.atmos.qv[agrid.cell(i, j, 0)]);
                let (uc, vc) = state.atmos.wind_at_center(i, j, 0);
                self.u.set(i, j, uc);
                self.v.set(i, j, vc);
            }
        }
    }

    /// Evaluates only the 2-m temperature field — the sweep a
    /// temperature-only network needs; the vapor and wind fills (3/4 of the
    /// full [`SurfaceFields::evaluate`] cost) are skipped.
    pub fn evaluate_temperature(&mut self, state: &CoupledState, theta0: f64) {
        let agrid = state.atmos.grid;
        self.temperature.resize_zeroed(agrid.horizontal());
        for j in 0..agrid.ny {
            for i in 0..agrid.nx {
                self.temperature
                    .set(i, j, theta0 + state.atmos.theta[agrid.cell(i, j, 0)]);
            }
        }
    }
}

impl WeatherStation {
    /// Creates a station.
    pub fn new(id: impl Into<String>, x: f64, y: f64) -> Self {
        WeatherStation {
            id: id.into(),
            location: (x, y),
        }
    }

    /// Evaluates the model equivalent of this station's report from a
    /// coupled state: cell lookup by linear interpolation of the location,
    /// biquadratic interpolation of the surface fields, fireline check in
    /// the cell and its 8 neighbors.
    pub fn observe(&self, state: &CoupledState, theta0: f64) -> StationObservation {
        let mut surface = SurfaceFields::new();
        surface.evaluate(state, theta0);
        self.observe_with(state, &surface)
    }

    /// Scratch-backed [`WeatherStation::observe`]: samples pre-evaluated
    /// [`SurfaceFields`], so a station network pays the surface-field sweep
    /// once per state instead of once per station. Bit-identical to
    /// [`WeatherStation::observe`].
    pub fn observe_with(
        &self,
        state: &CoupledState,
        surface: &SurfaceFields,
    ) -> StationObservation {
        let h = state.atmos.grid.horizontal();
        let (x, y) = self.location;
        // §3.1: locate the cell (linear interpolation of the location) …
        let (ci, cj, _, _) = h.locate(x, y);
        // … and evaluate the fields by biquadratic interpolation.
        let temperature = surface.temperature.sample_biquadratic(x, y);
        let wind = (
            surface.u.sample_biquadratic(x, y),
            surface.v.sample_biquadratic(x, y),
        );
        // Humidity proxy: vapor perturbation mapped to a relative scale.
        let humidity = (0.4 + surface.qv.sample_biquadratic(x, y) * 50.0).clamp(0.0, 1.0);

        // Fireline proximity: any front crossing in the station's atmosphere
        // cell or its neighbors, measured on the fire mesh.
        let fire_nearby = fireline_near_cell(state, ci, cj);

        StationObservation {
            temperature,
            wind,
            humidity,
            fire_nearby,
            cell: (ci, cj),
        }
    }

    /// Innovation (observed − model) for a report, used for the comparison
    /// the paper describes and for assimilation.
    pub fn innovation(&self, report: &StationReport, state: &CoupledState, theta0: f64) -> f64 {
        let obs = self.observe(state, theta0);
        report.temperature - obs.temperature
    }
}

/// Whether the fireline (sign change of ψ) intersects the atmosphere cell
/// `(ci, cj)` or any of its 8 neighbors.
fn fireline_near_cell(state: &CoupledState, ci: usize, cj: usize) -> bool {
    let h = state.atmos.grid.horizontal();
    let fire_psi = &state.fire.psi;
    let fgrid = fire_psi.grid();
    // World bounds of the 3×3 cell neighborhood.
    let (cx0, cy0) = h.world(ci.saturating_sub(1), cj.saturating_sub(1));
    let (cx1, cy1) = h.world((ci + 1).min(h.nx - 1), (cj + 1).min(h.ny - 1));
    // Scan fire-mesh nodes in the bounding box for burning and non-burning
    // nodes; a mixed region contains the fireline.
    let mut any_burn = false;
    let mut any_clear = false;
    for iy in 0..fgrid.ny {
        for ix in 0..fgrid.nx {
            let (x, y) = fgrid.world(ix, iy);
            if x < cx0 - fgrid.dx || x > cx1 + fgrid.dx || y < cy0 - fgrid.dy || y > cy1 + fgrid.dy
            {
                continue;
            }
            if fire_psi.get(ix, iy) < 0.0 {
                any_burn = true;
            } else {
                any_clear = true;
            }
            if any_burn && any_clear {
                return true;
            }
        }
    }
    false
}

/// Generates "real" station reports from a truth state by adding Gaussian
/// noise — the identical-twin data source for experiment E7.
pub fn synthesize_reports(
    stations: &[WeatherStation],
    truth: &CoupledState,
    theta0: f64,
    noise_temp: f64,
    noise_wind: f64,
    rng: &mut wildfire_math::GaussianSampler,
) -> Vec<StationReport> {
    let mut surface = SurfaceFields::new();
    surface.evaluate(truth, theta0);
    stations
        .iter()
        .map(|s| {
            let o = s.observe_with(truth, &surface);
            StationReport {
                time: truth.time(),
                temperature: o.temperature + rng.normal(0.0, noise_temp),
                wind: (
                    o.wind.0 + rng.normal(0.0, noise_wind),
                    o.wind.1 + rng.normal(0.0, noise_wind),
                ),
                humidity: o.humidity,
            }
        })
        .collect()
}

/// Convenience: checks that the station's ignition-time field indicates a
/// fire arrival before `t` anywhere within radius `r` of the station — the
/// "is there really a fire in the cell" confirmation of §3.1 applied to the
/// fire state.
pub fn fire_arrived_near(state: &CoupledState, location: (f64, f64), r: f64, t: f64) -> bool {
    let g = state.fire.tig.grid();
    for iy in 0..g.ny {
        for ix in 0..g.nx {
            let (x, y) = g.world(ix, iy);
            if (x - location.0).powi(2) + (y - location.1).powi(2) <= r * r {
                let tig = state.fire.tig.get(ix, iy);
                if tig < UNBURNED && tig <= t {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use wildfire_atmos::state::AtmosGrid;
    use wildfire_atmos::AtmosParams;
    use wildfire_core::CoupledModel;
    use wildfire_fire::ignition::IgnitionShape;
    use wildfire_fuel::FuelCategory;

    fn model() -> CoupledModel {
        CoupledModel::new(
            AtmosGrid {
                nx: 8,
                ny: 8,
                nz: 4,
                dx: 60.0,
                dy: 60.0,
                dz: 50.0,
            },
            AtmosParams::default(),
            FuelCategory::ShortGrass,
            5,
        )
        .unwrap()
    }

    fn burning_state(m: &CoupledModel) -> CoupledState {
        m.ignite(
            &[IgnitionShape::Circle {
                center: (240.0, 240.0),
                radius: 30.0,
            }],
            0.0,
        )
    }

    #[test]
    fn observe_ambient_state() {
        let m = model();
        let s = m.ignite(&[], 0.0);
        let station = WeatherStation::new("KDEN", 200.0, 200.0);
        let obs = station.observe(&s, 300.0);
        assert!((obs.temperature - 300.0).abs() < 1e-9);
        assert!((obs.wind.0 - 3.0).abs() < 1e-9);
        assert!(!obs.fire_nearby);
    }

    #[test]
    fn cell_lookup_is_correct() {
        let m = model();
        let s = m.ignite(&[], 0.0);
        // Horizontal grid origin is (30, 30) with dx = 60: x = 200 lies in
        // cell index 2 (nodes at 30, 90, 150, 210 …).
        let station = WeatherStation::new("X", 200.0, 95.0);
        let obs = station.observe(&s, 300.0);
        assert_eq!(obs.cell, (2, 1));
    }

    #[test]
    fn fire_detected_near_station_only() {
        let m = model();
        let s = burning_state(&m);
        let near = WeatherStation::new("NEAR", 240.0, 240.0).observe(&s, 300.0);
        assert!(near.fire_nearby);
        let far = WeatherStation::new("FAR", 60.0, 60.0).observe(&s, 300.0);
        assert!(!far.fire_nearby);
    }

    #[test]
    fn heated_air_shows_in_station_temperature() {
        let m = model();
        let mut s = burning_state(&m);
        m.run(&mut s, 8.0, 0.5, |_, _| {}).unwrap();
        let at_fire = WeatherStation::new("F", 240.0, 240.0).observe(&s, 300.0);
        let away = WeatherStation::new("A", 60.0, 420.0).observe(&s, 300.0);
        assert!(
            at_fire.temperature > away.temperature,
            "fire column must be warmer: {} vs {}",
            at_fire.temperature,
            away.temperature
        );
    }

    #[test]
    fn innovation_sign() {
        let m = model();
        let s = m.ignite(&[], 0.0);
        let station = WeatherStation::new("I", 150.0, 150.0);
        let report = StationReport {
            time: 0.0,
            temperature: 310.0,
            wind: (3.0, 0.0),
            humidity: 0.4,
        };
        let innov = station.innovation(&report, &s, 300.0);
        assert!((innov - 10.0).abs() < 1e-6);
    }

    #[test]
    fn synthesized_reports_scatter_around_truth() {
        let m = model();
        let s = m.ignite(&[], 0.0);
        let stations: Vec<WeatherStation> = (0..20)
            .map(|i| WeatherStation::new(format!("S{i}"), 60.0 + 18.0 * i as f64, 240.0))
            .collect();
        let mut rng = wildfire_math::GaussianSampler::new(3);
        let reports = synthesize_reports(&stations, &s, 300.0, 1.0, 0.5, &mut rng);
        assert_eq!(reports.len(), 20);
        let mean_t: f64 = reports.iter().map(|r| r.temperature).sum::<f64>() / reports.len() as f64;
        assert!((mean_t - 300.0).abs() < 1.5, "mean temp {mean_t}");
        // Not all identical (noise applied).
        assert!(reports
            .windows(2)
            .any(|w| w[0].temperature != w[1].temperature));
    }

    #[test]
    fn observe_with_shared_surface_matches_observe() {
        // One SurfaceFields evaluation must serve every station of a
        // network bit-identically to the per-station path.
        let m = model();
        let mut s = burning_state(&m);
        m.run(&mut s, 6.0, 0.5, |_, _| {}).unwrap();
        let mut surface = SurfaceFields::new();
        surface.evaluate(&s, 300.0);
        for (x, y) in [(240.0, 240.0), (95.0, 310.0), (60.0, 60.0)] {
            let st = WeatherStation::new("W", x, y);
            assert_eq!(st.observe(&s, 300.0), st.observe_with(&s, &surface));
        }
    }

    #[test]
    fn fire_arrival_radius_check() {
        let m = model();
        let s = burning_state(&m);
        assert!(fire_arrived_near(&s, (240.0, 240.0), 10.0, 1.0));
        assert!(!fire_arrived_near(&s, (60.0, 60.0), 10.0, 1.0));
        // Radius too small to reach the fire from a point 50 m away.
        assert!(!fire_arrived_near(&s, (300.0, 240.0), 5.0, 1.0));
    }
}
