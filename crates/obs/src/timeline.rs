//! Time-tagged observation streams: [`ObsStreamSpec`] and [`ObsTimeline`].
//!
//! §3.1 describes data that "arrives" — station reports carry timestamps,
//! image overpasses happen at instants. A scenario declares its data
//! sources as [`ObsStreamSpec`]s (what kind of instrument, how often); an
//! [`ObsTimeline`] expands those declarations over a run window into the
//! merged, sorted schedule of analysis times the assimilation driver walks.

use crate::image_obs::ImageObservation;
use crate::obs_set::ObsSet;
use crate::operator::{
    synthesize_measurements, ImagePixels, ObservationOperator, StationTemperatures, StridedPsi,
};
use crate::station::WeatherStation;
use wildfire_core::{CoupledModel, CoupledState};

/// What a declared data stream measures.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsStreamKind {
    /// ψ at every `stride`-th fire-mesh node (gridded remote sensing /
    /// identical-twin truth sampling) with error std `sigma`.
    StridedPsi {
        /// Node stride (≥ 1; 1 = dense field).
        stride: usize,
        /// Observation-error std (level-set units).
        sigma: f64,
    },
    /// A network of weather stations reporting 2-m temperature.
    Stations {
        /// Station world locations (m).
        locations: Vec<(f64, f64)>,
        /// Reference surface temperature θ0 (K).
        theta0: f64,
        /// Report-error std (K).
        sigma: f64,
    },
    /// Airborne thermal imagery over the fire domain.
    ThermalImage {
        /// Image resolution (pixels per axis).
        pixels: usize,
        /// Camera altitude (m).
        altitude: f64,
        /// Per-pixel radiance-error std.
        sigma: f64,
    },
}

/// A declared data stream: an instrument kind plus its reporting cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsStreamSpec {
    /// What the stream measures.
    pub kind: ObsStreamKind,
    /// First report time (s, simulation clock).
    pub start: f64,
    /// Reporting period (s, > 0).
    pub period: f64,
}

impl ObsStreamSpec {
    /// A stream reporting every `period` seconds starting at `start`.
    pub fn new(kind: ObsStreamKind, start: f64, period: f64) -> Self {
        ObsStreamSpec {
            kind,
            start,
            period,
        }
    }

    /// Realizes the declared instrument against a concrete model as an
    /// [`ObservationOperator`] (the scenario-to-assimilation hand-off).
    pub fn build_operator(&self, model: &CoupledModel) -> Box<dyn ObservationOperator> {
        match &self.kind {
            ObsStreamKind::StridedPsi { stride, sigma } => {
                Box::new(StridedPsi::new(model.fire_grid, *stride, *sigma))
            }
            ObsStreamKind::Stations {
                locations,
                theta0,
                sigma,
            } => {
                let stations = locations
                    .iter()
                    .enumerate()
                    .map(|(i, &(x, y))| WeatherStation::new(format!("STN{i:02}"), x, y))
                    .collect();
                Box::new(StationTemperatures::new(stations, *theta0, *sigma))
            }
            ObsStreamKind::ThermalImage {
                pixels,
                altitude,
                sigma,
            } => {
                let image = ImageObservation::over_fire_domain(model, *altitude, *pixels);
                Box::new(ImagePixels::new(model.clone(), image, *sigma))
            }
        }
    }
}

/// One scheduled observation: stream `stream` reports at `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsEvent {
    /// Report time (s).
    pub time: f64,
    /// Index into the declaring stream list.
    pub stream: usize,
}

/// The merged, time-sorted schedule of every declared stream over a run
/// window. Events at (numerically) equal times share one analysis — that is
/// what makes the pooled [`crate::ObsSet`] heterogeneous.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsTimeline {
    events: Vec<ObsEvent>,
}

/// Two event times within this tolerance belong to one analysis. Shared by
/// the timeline walk and the streaming [`crate::source`] layer, so both
/// group reports into analyses identically.
pub const TIME_EPS: f64 = 1e-9;

/// Hard cap on expanded events per stream — a malformed cadence (tiny
/// period over a huge window) must not exhaust memory.
const MAX_EVENTS_PER_STREAM: u64 = 1_000_000;

impl ObsTimeline {
    /// Expands stream declarations over `[0, t_end]` into a sorted
    /// timeline. Only reports inside the window are emitted (a periodic
    /// stream starting before t = 0 contributes from its first in-window
    /// tick). Streams with a non-positive period contribute only their
    /// start time (one-shot); streams with a non-finite start or period are
    /// skipped, and expansion is capped at one million events per stream.
    pub fn from_streams(streams: &[ObsStreamSpec], t_end: f64) -> Self {
        let mut events = Vec::new();
        for (s, spec) in streams.iter().enumerate() {
            if !spec.start.is_finite() || !spec.period.is_finite() {
                continue;
            }
            if spec.period > 0.0 {
                // First tick index at or after t = 0.
                let mut k = if spec.start < -TIME_EPS {
                    ((-TIME_EPS - spec.start) / spec.period).ceil() as u64
                } else {
                    0
                };
                let k_cap = k.saturating_add(MAX_EVENTS_PER_STREAM);
                loop {
                    let t = spec.start + spec.period * k as f64;
                    if t > t_end + TIME_EPS || k >= k_cap {
                        break;
                    }
                    if t >= -TIME_EPS {
                        events.push(ObsEvent { time: t, stream: s });
                    }
                    k += 1;
                }
            } else if spec.start >= -TIME_EPS && spec.start <= t_end + TIME_EPS {
                events.push(ObsEvent {
                    time: spec.start,
                    stream: s,
                });
            }
        }
        events.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.stream.cmp(&b.stream)));
        ObsTimeline { events }
    }

    /// All events, time-sorted.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct analysis times (events within tolerance merged).
    pub fn analysis_times(&self) -> Vec<f64> {
        let mut out: Vec<f64> = Vec::new();
        for e in &self.events {
            if out.last().is_none_or(|&t| e.time > t + TIME_EPS) {
                out.push(e.time);
            }
        }
        out
    }

    /// Indices of the streams reporting at analysis time `t`.
    pub fn streams_due_at(&self, t: f64) -> impl Iterator<Item = usize> + '_ {
        self.events
            .iter()
            .filter(move |e| (e.time - t).abs() <= TIME_EPS)
            .map(|e| e.stream)
    }

    /// The identical-twin walk step shared by every data-driven harness:
    /// synthesizes measurement blocks (via [`synthesize_measurements`]) for
    /// each stream due at analysis time `t` into `blocks` and assembles the
    /// due operators + blocks into the [`ObsSet`] for that instant.
    /// `operators` must be the realized stream list, index-aligned with the
    /// declarations this timeline was built from (see
    /// [`ObsStreamSpec::build_operator`]); `blocks` is caller scratch reused
    /// across instants.
    ///
    /// # Errors
    /// Operator failures during synthesis or pooling.
    pub fn synthesize_due_pool<'a>(
        &self,
        operators: &'a [Box<dyn ObservationOperator>],
        t: f64,
        truth: &CoupledState,
        rng: &mut wildfire_math::GaussianSampler,
        blocks: &'a mut Vec<Vec<f64>>,
    ) -> crate::Result<ObsSet<'a>> {
        let due: Vec<usize> = self.streams_due_at(t).collect();
        blocks.resize_with(due.len(), Vec::new);
        for (block, &s) in blocks.iter_mut().zip(due.iter()) {
            block.clear();
            synthesize_measurements(operators[s].as_ref(), truth, rng, block)?;
        }
        let mut pool = ObsSet::new();
        for (&s, block) in due.iter().zip(blocks.iter()) {
            pool.push(operators[s].as_ref(), block)?;
        }
        Ok(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psi_stream(start: f64, period: f64) -> ObsStreamSpec {
        ObsStreamSpec::new(
            ObsStreamKind::StridedPsi {
                stride: 5,
                sigma: 1.0,
            },
            start,
            period,
        )
    }

    fn station_stream(start: f64, period: f64) -> ObsStreamSpec {
        ObsStreamSpec::new(
            ObsStreamKind::Stations {
                locations: vec![(100.0, 100.0), (200.0, 200.0)],
                theta0: 300.0,
                sigma: 1.0,
            },
            start,
            period,
        )
    }

    #[test]
    fn timeline_merges_and_sorts_streams() {
        let tl =
            ObsTimeline::from_streams(&[psi_stream(60.0, 60.0), station_stream(30.0, 30.0)], 120.0);
        let times: Vec<f64> = tl.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![30.0, 60.0, 60.0, 90.0, 120.0, 120.0]);
        assert_eq!(tl.analysis_times(), vec![30.0, 60.0, 90.0, 120.0]);
        // Both streams are due at the shared instants.
        let due: Vec<usize> = tl.streams_due_at(60.0).collect();
        assert_eq!(due, vec![0, 1]);
        let due: Vec<usize> = tl.streams_due_at(90.0).collect();
        assert_eq!(due, vec![1]);
    }

    #[test]
    fn one_shot_and_empty_windows() {
        let one_shot = ObsStreamSpec::new(
            ObsStreamKind::StridedPsi {
                stride: 1,
                sigma: 0.5,
            },
            45.0,
            0.0,
        );
        let tl = ObsTimeline::from_streams(std::slice::from_ref(&one_shot), 100.0);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.events()[0].time, 45.0);
        let none = ObsTimeline::from_streams(&[one_shot], 10.0);
        assert!(none.is_empty());
        assert!(none.analysis_times().is_empty());
    }

    #[test]
    fn malformed_streams_are_skipped_or_clamped() {
        // Non-finite cadences are dropped entirely.
        let bad = ObsStreamSpec::new(
            ObsStreamKind::StridedPsi {
                stride: 1,
                sigma: 1.0,
            },
            f64::NAN,
            60.0,
        );
        assert!(ObsTimeline::from_streams(&[bad], 120.0).is_empty());
        // A periodic stream starting before t = 0 contributes only its
        // in-window ticks.
        let early = ObsStreamSpec::new(
            ObsStreamKind::StridedPsi {
                stride: 1,
                sigma: 1.0,
            },
            -60.0,
            45.0,
        );
        let tl = ObsTimeline::from_streams(&[early], 100.0);
        let times: Vec<f64> = tl.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![30.0, 75.0]);
        // One-shot reports before the window are dropped.
        let past = ObsStreamSpec::new(
            ObsStreamKind::StridedPsi {
                stride: 1,
                sigma: 1.0,
            },
            -5.0,
            0.0,
        );
        assert!(ObsTimeline::from_streams(&[past], 100.0).is_empty());
    }

    #[test]
    fn stream_operators_realize_against_a_model() {
        use wildfire_atmos::state::AtmosGrid;
        let model = CoupledModel::new(
            AtmosGrid {
                nx: 6,
                ny: 6,
                nz: 4,
                dx: 60.0,
                dy: 60.0,
                dz: 50.0,
            },
            wildfire_atmos::AtmosParams::default(),
            wildfire_fuel::FuelCategory::ShortGrass,
            4,
        )
        .unwrap();
        let psi = psi_stream(0.0, 60.0).build_operator(&model);
        assert_eq!(psi.dim(), model.fire_grid.len().div_ceil(5));
        assert_eq!(psi.name(), "strided-psi");
        let st = station_stream(0.0, 30.0).build_operator(&model);
        assert_eq!(st.dim(), 2);
        let img = ObsStreamSpec::new(
            ObsStreamKind::ThermalImage {
                pixels: 8,
                altitude: 3000.0,
                sigma: 0.5,
            },
            0.0,
            120.0,
        )
        .build_operator(&model);
        assert_eq!(img.dim(), 64);
    }
}
