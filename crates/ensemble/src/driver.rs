//! The assimilation-cycle driver (Fig. 2).
//!
//! One cycle = advance all members in parallel (forecast) → evaluate the
//! observation function per member (parallel) → analysis (standard EnKF on
//! raw fields, or morphing EnKF on extended states with registrations
//! computed in parallel) → write the updated states back. State exchange
//! can run through any [`crate::StateStore`] to reproduce the paper's
//! disk-file architecture.

use crate::metrics::{evaluate_coupled_ensemble, EnsembleMetrics};
use crate::parallel_enkf::ParallelEnkf;
use crate::pool::{parallel_for_each, parallel_for_each_ws, parallel_map};
use crate::store::StateStore;
use crate::{EnsembleError, Result};
use wildfire_core::{CoupledModel, CoupledState, CoupledWorkspace};
use wildfire_enkf::morphing_enkf::ExtendedState;
use wildfire_enkf::{AnalysisWorkspace, MorphingConfig, MorphingEnkf, MorphingWorkspace};
use wildfire_fire::ignition::IgnitionShape;
use wildfire_fire::FireState;
use wildfire_grid::Field2;
use wildfire_math::{GaussianSampler, Matrix};

/// Cap used to encode the `t_i = ∞` (unburned) sentinel as a finite value
/// inside filter state vectors.
pub const TIG_CAP: f64 = 1.0e4;

/// Scratch for a full forecast–analysis cycle: one [`CoupledWorkspace`] per
/// worker thread for the member-parallel forecast, plus the packed filter
/// matrices and the analysis workspaces. Create once per driver lifetime
/// and thread through [`EnsembleDriver::cycle_ws`]; everything is sized on
/// first use and reused across cycles.
#[derive(Debug, Default)]
pub struct EnsembleWorkspace {
    /// Per-worker coupled-model workspaces (index = worker).
    pub workers: Vec<CoupledWorkspace>,
    /// Packed state ensemble `X` (`2·grid × N`).
    pub(crate) x: Matrix,
    /// Packed synthetic observations `Y`.
    pub(crate) y: Matrix,
    /// Observation vector.
    pub(crate) data: Vec<f64>,
    /// Observation error variances.
    pub(crate) obs_var: Vec<f64>,
    /// Strided observation node indices.
    pub(crate) obs_idx: Vec<usize>,
    /// Inner dense-analysis scratch (standard EnKF path).
    pub analysis: AnalysisWorkspace,
    /// Morphing-EnKF scratch (morphing path).
    pub morph: MorphingWorkspace,
}

impl EnsembleWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Makes sure there is one coupled workspace per worker.
    pub(crate) fn ensure_workers(&mut self, threads: usize) {
        let want = threads.max(1);
        if self.workers.len() < want {
            self.workers.resize_with(want, CoupledWorkspace::new);
        }
    }
}

/// Which analysis algorithm a cycle uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Stochastic EnKF applied directly to the model fields `(ψ, t_i)` —
    /// the baseline that Fig. 4(c) shows diverging.
    Standard,
    /// The morphing EnKF of §3.3 — Fig. 4(d).
    Morphing,
}

/// Initial-ensemble specification: the identical-twin setup of Fig. 4
/// ("the initial ensemble was created by a random perturbation of the
/// comparison solution, with the fire ignited at an intentionally incorrect
/// location").
#[derive(Debug, Clone)]
pub struct EnsembleSetup {
    /// Number of members (the paper uses 25).
    pub n_members: usize,
    /// Nominal (possibly wrong) ignition center (m).
    pub center: (f64, f64),
    /// Ignition radius (m).
    pub radius: f64,
    /// Std of the random per-member displacement of the ignition center (m).
    pub position_spread: f64,
    /// RNG seed for the perturbation draws.
    pub seed: u64,
}

/// Outcome metrics of one assimilation cycle.
#[derive(Debug, Clone, Copy)]
pub struct CycleReport {
    /// Metrics before the analysis (forecast fit).
    pub forecast: EnsembleMetrics,
    /// Metrics after the analysis.
    pub analysis: EnsembleMetrics,
}

/// The ensemble driver.
pub struct EnsembleDriver {
    /// The (shared, immutable) coupled model configuration.
    pub model: CoupledModel,
    /// Worker threads for member-parallel phases.
    pub threads: usize,
}

impl EnsembleDriver {
    /// Creates a driver.
    pub fn new(model: CoupledModel, threads: usize) -> Self {
        EnsembleDriver { model, threads }
    }

    /// Builds the initial ensemble per `setup`: every member ignited at the
    /// nominal center plus a Gaussian displacement. Draws go through the
    /// canonical [`wildfire_fire::ignition::displaced`] primitive, so this
    /// is bit-identical to `wildfire_sim::perturb` for equal seeds.
    pub fn initial_ensemble(&self, setup: &EnsembleSetup) -> Vec<CoupledState> {
        let mut rng = GaussianSampler::new(setup.seed);
        let nominal = [IgnitionShape::Circle {
            center: setup.center,
            radius: setup.radius,
        }];
        (0..setup.n_members)
            .map(|_| {
                let shapes =
                    wildfire_fire::ignition::displaced(&nominal, setup.position_spread, &mut rng);
                self.model.ignite(&shapes, 0.0)
            })
            .collect()
    }

    /// Advances all members to `t_target` in parallel (the forecast phase
    /// of Fig. 2). Member failures are collected and the first is returned.
    ///
    /// # Errors
    /// The first member failure, if any.
    pub fn forecast(&self, members: &mut [CoupledState], t_target: f64, dt: f64) -> Result<()> {
        let mut ws = EnsembleWorkspace::new();
        self.forecast_ws(members, t_target, dt, &mut ws)
    }

    /// Workspace-backed [`EnsembleDriver::forecast`]: each worker thread
    /// steps its members through its own [`CoupledWorkspace`] from `ws`, so
    /// the parallel path stays lock-free and bit-identical to sequential.
    /// All *stepping* buffers are reused; with `threads <= 1` the call is
    /// fully allocation-free in steady state, while `threads > 1` still
    /// spawns the scoped worker threads each call.
    ///
    /// # Errors
    /// The first member failure, if any.
    pub fn forecast_ws(
        &self,
        members: &mut [CoupledState],
        t_target: f64,
        dt: f64,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        ws.ensure_workers(self.threads);
        // Slice, don't pass the whole vec: a workspace previously grown by a
        // driver with more threads must not raise THIS driver's worker count
        // (parallel_for_each_ws spawns one worker per workspace handed in).
        let workers = &mut ws.workers[..self.threads.max(1)];
        let errors = parking_lot::Mutex::new(Vec::new());
        parallel_for_each_ws(members, workers, |i, state, cw| {
            if let Err(e) = self.model.run_ws(state, t_target, dt, cw, |_, _| {}) {
                errors.lock().push((i, e));
            }
        });
        let mut errs = errors.into_inner();
        if let Some((_, e)) = errs.drain(..).next() {
            return Err(e.into());
        }
        Ok(())
    }

    /// Forecast phase routed through a [`StateStore`]: states are loaded
    /// from the store, advanced, and written back — the disk-file dataflow
    /// of Fig. 2, benchmarked in experiment E2.
    ///
    /// # Errors
    /// Store or model failures.
    pub fn forecast_via_store(
        &self,
        members: &mut [CoupledState],
        store: &dyn StateStore,
        t_target: f64,
        dt: f64,
    ) -> Result<()> {
        // Save current fire states.
        for (i, m) in members.iter().enumerate() {
            store.save(i, &m.fire)?;
        }
        // Load → advance → save, member-parallel.
        let errors = parking_lot::Mutex::new(Vec::new());
        parallel_for_each(members, self.threads, |i, state| {
            let mut run = || -> Result<()> {
                state.fire = store.load(i)?;
                self.model.run(state, t_target, dt, |_, _| {})?;
                store.save(i, &state.fire)?;
                Ok(())
            };
            if let Err(e) = run() {
                errors.lock().push(e);
            }
        });
        let mut errs = errors.into_inner();
        if let Some(e) = errs.drain(..).next() {
            return Err(e);
        }
        Ok(())
    }

    /// Standard-EnKF analysis directly on the model fields (Fig. 4(c)
    /// baseline): state vector `[ψ, t_i]`, observations are the truth's ψ
    /// values at every `obs_stride`-th fire-mesh node.
    ///
    /// # Errors
    /// Filter failures.
    pub fn analyze_standard(
        &self,
        members: &mut [CoupledState],
        truth_fire: &FireState,
        obs_stride: usize,
        sigma_obs: f64,
        inflation: f64,
        rng: &mut GaussianSampler,
    ) -> Result<()> {
        let mut ws = EnsembleWorkspace::new();
        self.analyze_standard_ws(
            members, truth_fire, obs_stride, sigma_obs, inflation, rng, &mut ws,
        )
    }

    /// Allocation-free [`EnsembleDriver::analyze_standard`]: the packed
    /// ensemble matrices and the dense-analysis temporaries come from `ws`
    /// and are reused across cycles. Bit-identical to the allocating
    /// wrapper.
    ///
    /// # Errors
    /// Filter failures.
    #[allow(clippy::too_many_arguments)]
    pub fn analyze_standard_ws(
        &self,
        members: &mut [CoupledState],
        truth_fire: &FireState,
        obs_stride: usize,
        sigma_obs: f64,
        inflation: f64,
        rng: &mut GaussianSampler,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        let n_ens = members.len();
        if n_ens < 2 {
            return Err(EnsembleError::Config("need at least 2 members"));
        }
        let g = truth_fire.grid();
        let n_state = 2 * g.len();
        let x = &mut ws.x;
        x.resize_zeroed(n_state, n_ens);
        for (j, m) in members.iter().enumerate() {
            m.fire.pack_into(TIG_CAP, x.col_mut(j));
        }
        // Observation: strided ψ nodes.
        let obs_idx = &mut ws.obs_idx;
        obs_idx.clear();
        obs_idx.extend((0..g.len()).step_by(obs_stride.max(1)));
        let m_obs = obs_idx.len();
        let y = &mut ws.y;
        y.resize_zeroed(m_obs, n_ens);
        for j in 0..n_ens {
            let col = x.col(j);
            for (r, &idx) in obs_idx.iter().enumerate() {
                y[(r, j)] = col[idx];
            }
        }
        let data = &mut ws.data;
        data.clear();
        data.extend(obs_idx.iter().map(|&idx| truth_fire.psi.as_slice()[idx]));
        let obs_var = &mut ws.obs_var;
        obs_var.clear();
        obs_var.resize(m_obs, sigma_obs * sigma_obs);
        let filter = ParallelEnkf::new(self.threads, inflation);
        filter.analyze_ws(x, y, data, obs_var, rng, &mut ws.analysis)?;
        // Unpack and restore invariants.
        let time = members[0].time();
        for (j, m) in members.iter_mut().enumerate() {
            m.fire.unpack_into(x.col(j), TIG_CAP * 0.99, time);
            m.fire.sanitize(TIG_CAP * 0.99, time);
        }
        Ok(())
    }

    /// Morphing-EnKF analysis (Fig. 4(d)): members are registered against a
    /// reference member in parallel, the inner EnKF runs on extended states
    /// `[r, T]`, and the results are morphed back.
    ///
    /// # Errors
    /// Filter failures.
    pub fn analyze_morphing(
        &self,
        members: &mut [CoupledState],
        truth_fire: &FireState,
        config: &MorphingConfig,
        rng: &mut GaussianSampler,
    ) -> Result<()> {
        let mut ws = EnsembleWorkspace::new();
        self.analyze_morphing_ws(members, truth_fire, config, rng, &mut ws)
    }

    /// Workspace-backed [`EnsembleDriver::analyze_morphing`]: the inner
    /// EnKF's packed matrices and dense temporaries come from `ws.morph`.
    /// The registration phase still allocates its per-member displacement
    /// fields (they are returned values, not scratch). Bit-identical to the
    /// allocating wrapper.
    ///
    /// # Errors
    /// Filter failures.
    pub fn analyze_morphing_ws(
        &self,
        members: &mut [CoupledState],
        truth_fire: &FireState,
        config: &MorphingConfig,
        rng: &mut GaussianSampler,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        let n_ens = members.len();
        if n_ens < 2 {
            return Err(EnsembleError::Config("need at least 2 members"));
        }
        let filter = MorphingEnkf::new(config.clone());
        let time = members[0].time();

        // Field layout per member: [ψ, capped t_i].
        let to_fields = |f: &FireState| -> Vec<Field2> {
            let g = f.psi.grid();
            let capped = Field2::from_vec(
                g,
                f.tig.as_slice().iter().map(|&t| t.min(TIG_CAP)).collect(),
            );
            vec![f.psi.clone(), capped]
        };
        let reference = to_fields(&members[0].fire);
        let data = to_fields(truth_fire);

        // Parallel registrations (the expensive transform phase).
        let member_fields: Vec<Vec<Field2>> = members.iter().map(|m| to_fields(&m.fire)).collect();
        let extended: Vec<std::result::Result<ExtendedState, wildfire_enkf::EnkfError>> =
            parallel_map(&member_fields, self.threads, |_, fields| {
                filter.to_extended(fields, &reference, 0)
            });
        let mut ext_states = Vec::with_capacity(n_ens);
        for e in extended {
            ext_states.push(e.map_err(EnsembleError::Filter)?);
        }
        let data_ext = filter
            .to_extended(&data, &reference, 0)
            .map_err(EnsembleError::Filter)?;

        let analyzed = filter
            .analyze_extended_ws(&ext_states, &data_ext, &reference, rng, &mut ws.morph)
            .map_err(EnsembleError::Filter)?;

        for (m, fields) in members.iter_mut().zip(analyzed) {
            let g = fields[0].grid();
            let tig = Field2::from_vec(
                g,
                fields[1]
                    .as_slice()
                    .iter()
                    .map(|&t| {
                        if t >= TIG_CAP * 0.99 {
                            wildfire_fire::UNBURNED
                        } else {
                            t
                        }
                    })
                    .collect(),
            );
            let mut fire = FireState {
                psi: fields.into_iter().next().expect("two fields"),
                tig,
                time,
            };
            fire.sanitize(TIG_CAP * 0.99, time);
            m.fire = fire;
        }
        Ok(())
    }

    /// One full cycle: forecast to `t_target`, evaluate, analyze with the
    /// chosen filter, evaluate again.
    ///
    /// # Errors
    /// Model and filter failures.
    #[allow(clippy::too_many_arguments)]
    pub fn cycle(
        &self,
        members: &mut [CoupledState],
        truth: &CoupledState,
        filter: FilterKind,
        t_target: f64,
        dt: f64,
        morphing_config: &MorphingConfig,
        rng: &mut GaussianSampler,
    ) -> Result<CycleReport> {
        let mut ws = EnsembleWorkspace::new();
        self.cycle_ws(
            members,
            truth,
            filter,
            t_target,
            dt,
            morphing_config,
            rng,
            &mut ws,
        )
    }

    /// Workspace-backed [`EnsembleDriver::cycle`]: the forecast runs through
    /// per-worker [`CoupledWorkspace`]s and the analysis through the packed
    /// filter scratch, so repeated cycles with one [`EnsembleWorkspace`]
    /// reuse every dense stepping/analysis buffer. Remaining allocations:
    /// the two metrics evaluations (per-member component masks), plus —
    /// with `threads > 1` — the scoped worker threads and the column
    /// fan-out's borrow vector. Bit-identical to the allocating wrapper.
    ///
    /// # Errors
    /// Model and filter failures.
    #[allow(clippy::too_many_arguments)]
    pub fn cycle_ws(
        &self,
        members: &mut [CoupledState],
        truth: &CoupledState,
        filter: FilterKind,
        t_target: f64,
        dt: f64,
        morphing_config: &MorphingConfig,
        rng: &mut GaussianSampler,
        ws: &mut EnsembleWorkspace,
    ) -> Result<CycleReport> {
        self.forecast_ws(members, t_target, dt, ws)?;
        let forecast = evaluate_coupled_ensemble(members, truth);
        match filter {
            FilterKind::Standard => {
                self.analyze_standard_ws(members, &truth.fire, 7, 2.0, 1.0, rng, ws)?
            }
            FilterKind::Morphing => {
                self.analyze_morphing_ws(members, &truth.fire, morphing_config, rng, ws)?
            }
        }
        let analysis = evaluate_coupled_ensemble(members, truth);
        Ok(CycleReport { forecast, analysis })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use wildfire_atmos::state::AtmosGrid;
    use wildfire_atmos::AtmosParams;
    use wildfire_enkf::RegistrationConfig;
    use wildfire_fuel::FuelCategory;

    fn driver(threads: usize) -> EnsembleDriver {
        let model = CoupledModel::new(
            AtmosGrid {
                nx: 6,
                ny: 6,
                nz: 4,
                dx: 60.0,
                dy: 60.0,
                dz: 50.0,
            },
            AtmosParams::default(),
            FuelCategory::ShortGrass,
            4,
        )
        .unwrap();
        EnsembleDriver::new(model, threads)
    }

    fn setup(n: usize) -> EnsembleSetup {
        EnsembleSetup {
            n_members: n,
            center: (180.0, 180.0),
            radius: 25.0,
            position_spread: 15.0,
            seed: 99,
        }
    }

    #[test]
    fn initial_ensemble_is_perturbed() {
        let d = driver(1);
        let members = d.initial_ensemble(&setup(6));
        assert_eq!(members.len(), 6);
        // Not all members identical.
        let a0 = members[0].fire.burned_area();
        assert!(a0 > 0.0);
        let centroids: Vec<_> = members
            .iter()
            .map(|m| wildfire_fire::perimeter::burned_centroid(&m.fire.psi).unwrap())
            .collect();
        assert!(centroids.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn parallel_forecast_matches_serial() {
        let d1 = driver(1);
        let d4 = driver(4);
        let mut serial = d1.initial_ensemble(&setup(5));
        let mut parallel = serial.clone();
        d1.forecast(&mut serial, 2.0, 0.5).unwrap();
        d4.forecast(&mut parallel, 2.0, 0.5).unwrap();
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(
                a.fire.psi, b.fire.psi,
                "parallel forecast must be deterministic"
            );
            assert_eq!(a.atmos.theta, b.atmos.theta);
        }
    }

    #[test]
    fn store_routed_forecast_matches_direct() {
        let d = driver(2);
        let mut direct = d.initial_ensemble(&setup(4));
        let mut routed = direct.clone();
        d.forecast(&mut direct, 1.5, 0.5).unwrap();
        let store = MemStore::new();
        d.forecast_via_store(&mut routed, &store, 1.5, 0.5).unwrap();
        for (a, b) in direct.iter().zip(routed.iter()) {
            assert_eq!(a.fire.psi, b.fire.psi);
            assert_eq!(a.fire.tig, b.fire.tig);
        }
        assert_eq!(store.members().len(), 4);
    }

    #[test]
    fn standard_analysis_pulls_psi_toward_truth() {
        let d = driver(2);
        let mut members = d.initial_ensemble(&setup(8));
        let truth = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (200.0, 200.0),
                radius: 25.0,
            }],
            0.0,
        );
        let before: f64 = members
            .iter()
            .map(|m| m.fire.psi.rmse(&truth.fire.psi).unwrap())
            .sum::<f64>()
            / 8.0;
        let mut rng = GaussianSampler::new(5);
        d.analyze_standard(&mut members, &truth.fire, 5, 1.0, 1.0, &mut rng)
            .unwrap();
        let after: f64 = members
            .iter()
            .map(|m| m.fire.psi.rmse(&truth.fire.psi).unwrap())
            .sum::<f64>()
            / 8.0;
        assert!(after < before, "ψ RMSE must drop: {before} → {after}");
        for m in &members {
            assert!(m.fire.is_consistent());
        }
    }

    #[test]
    fn morphing_analysis_moves_displaced_ensemble() {
        let d = driver(2);
        // Ensemble at the wrong location (Fig. 4 setup).
        let mut members = d.initial_ensemble(&EnsembleSetup {
            n_members: 6,
            center: (140.0, 140.0),
            radius: 25.0,
            position_spread: 10.0,
            seed: 7,
        });
        let truth = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (240.0, 240.0),
                radius: 25.0,
            }],
            0.0,
        );
        let cfg = MorphingConfig {
            registration: RegistrationConfig {
                max_shift: 160.0,
                shift_samples: 9,
                levels: vec![3],
                iterations: 20,
                ..Default::default()
            },
            sigma_amplitude: 2.0,
            sigma_displacement: 4.0,
            observed_fields: vec![0],
            ..Default::default()
        };
        let before = evaluate_coupled_ensemble(&members, &truth);
        let mut rng = GaussianSampler::new(11);
        d.analyze_morphing(&mut members, &truth.fire, &cfg, &mut rng)
            .unwrap();
        let after = evaluate_coupled_ensemble(&members, &truth);
        assert!(
            after.mean_position_error < 0.6 * before.mean_position_error,
            "morphing must close the position gap: {} → {}",
            before.mean_position_error,
            after.mean_position_error
        );
        for m in &members {
            assert!(m.fire.is_consistent());
            assert!(m.fire.burned_area() > 0.0, "fire must survive the morph");
        }
    }

    #[test]
    fn workspace_cycle_matches_allocating_cycle_bitwise() {
        let d = driver(3);
        let truth = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (200.0, 200.0),
                radius: 25.0,
            }],
            0.0,
        );
        let cfg = MorphingConfig::default();

        let mut alloc = d.initial_ensemble(&setup(6));
        let mut with_ws = alloc.clone();
        let mut ws = EnsembleWorkspace::new();
        let mut rng_a = GaussianSampler::new(3);
        let mut rng_b = GaussianSampler::new(3);
        // Two consecutive cycles through ONE workspace must stay
        // bit-identical to the allocating path.
        for k in 0..2 {
            let t = 1.0 + k as f64;
            d.cycle(
                &mut alloc,
                &truth,
                FilterKind::Standard,
                t,
                0.5,
                &cfg,
                &mut rng_a,
            )
            .unwrap();
            d.cycle_ws(
                &mut with_ws,
                &truth,
                FilterKind::Standard,
                t,
                0.5,
                &cfg,
                &mut rng_b,
                &mut ws,
            )
            .unwrap();
            for (a, b) in alloc.iter().zip(with_ws.iter()) {
                assert_eq!(a.fire.psi, b.fire.psi, "cycle {k}");
                assert_eq!(a.fire.tig, b.fire.tig, "cycle {k}");
                assert_eq!(a.atmos.theta, b.atmos.theta, "cycle {k}");
            }
        }
    }

    #[test]
    fn too_few_members_rejected() {
        let d = driver(1);
        let mut members = d.initial_ensemble(&setup(1));
        let truth = members[0].clone();
        let mut rng = GaussianSampler::new(1);
        assert!(d
            .analyze_standard(&mut members, &truth.fire, 5, 1.0, 1.0, &mut rng)
            .is_err());
    }
}
