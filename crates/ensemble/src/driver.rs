//! The assimilation-cycle driver (Fig. 2).
//!
//! One cycle = advance all members in parallel (forecast) → evaluate the
//! observation function per member (parallel) → analysis (standard EnKF on
//! raw fields, or morphing EnKF on extended states with registrations
//! computed in parallel) → write the updated states back. State exchange
//! can run through any [`crate::SnapshotStore`] to reproduce the paper's
//! disk-file architecture, including sharding the ensemble across worker
//! processes ([`EnsembleDriver::forecast_shard_via_store`]); whole-ensemble
//! checkpoints ([`EnsembleDriver::snapshot_into`]) capture every member
//! plus the filter RNG so an interrupted assimilation run resumes bit for
//! bit.

use crate::metrics::{evaluate_coupled_ensemble, EnsembleMetrics};
use crate::parallel_enkf::ParallelEnkf;
use crate::pool::{
    parallel_for_each_column_ws, parallel_for_each_dynamic_ws, parallel_for_each_ws,
};
use crate::store::SnapshotStore;
use crate::{EnsembleError, Result};
use wildfire_core::{CoupledModel, CoupledState, CoupledWorkspace};
use wildfire_enkf::morphing_enkf::ExtendedState;
use wildfire_enkf::{
    AnalysisWorkspace, Etkf, MorphingConfig, MorphingEnkf, MorphingWorkspace, RegistrationWorkspace,
};
use wildfire_fire::ignition::IgnitionShape;
use wildfire_fire::FireState;
use wildfire_grid::Field2;
use wildfire_math::{GaussianSampler, Matrix};
use wildfire_obs::snapshot::{
    check_model_fingerprint, decode_tig_into, encode_tig_into, model_fingerprint_into, FINGERPRINT,
};
use wildfire_obs::{
    CoupledSnapshot, ObsInbox, ObsScratch, ObsSet, ObsSource, ObsWorkspace, ObservationOperator,
    Snapshot, StridedPsi, TIME_EPS,
};

/// Cap used to encode the `t_i = ∞` (unburned) sentinel as a finite value
/// inside filter state vectors.
pub const TIG_CAP: f64 = 1.0e4;

/// Scratch for a full forecast–analysis cycle: one [`CoupledWorkspace`] per
/// worker thread for the member-parallel forecast, plus the packed filter
/// matrices and the analysis workspaces. Create once per driver lifetime
/// and thread through [`EnsembleDriver::cycle_ws`]; everything is sized on
/// first use and reused across cycles.
#[derive(Debug, Default)]
pub struct EnsembleWorkspace {
    /// Per-worker coupled-model workspaces (index = worker).
    pub workers: Vec<CoupledWorkspace>,
    /// Packed state ensemble `X` (`2·grid × N`).
    pub(crate) x: Matrix,
    /// Identical-twin measurement scratch for the `obs_stride` wrappers.
    pub(crate) data: Vec<f64>,
    /// Observation-pool packing buffers: `(y, H(X), R)`.
    pub obs: ObsWorkspace,
    /// Inner dense-analysis scratch (standard-EnKF and ETKF paths).
    pub analysis: AnalysisWorkspace,
    /// Morphing-EnKF scratch (morphing path).
    pub morph: MorphingWorkspace,
    /// Per-worker registration scratch pyramids for the parallel
    /// member-registration phase of the morphing analyses.
    pub reg_pool: Vec<RegistrationWorkspace>,
    /// Per-worker operator-evaluation scratch for the member-parallel
    /// observation packing (index = worker).
    pub obs_scratch: Vec<ObsScratch>,
    /// Gridded-ψ data field scratch for the morphing observation path.
    pub(crate) psi_data: Field2,
    /// Data field slots `[ψ, capped t_i]` for the morphing analyses.
    pub(crate) data_fields: Vec<Field2>,
    /// Per-worker scratch for the store-routed forecast (index = worker):
    /// each worker owns its stepping workspace *and* its snapshot/exchange
    /// buffers, so shard forecasts stay lock-free and allocation-free in
    /// steady state.
    pub store_workers: Vec<StoreWorker>,
}

/// One store-exchange worker's scratch: a coupled stepping workspace plus
/// the snapshot container its member states travel through.
#[derive(Debug, Default)]
pub struct StoreWorker {
    /// Stepping workspace.
    pub coupled: CoupledWorkspace,
    /// Snapshot exchange buffer (record names + payload capacities are
    /// reused across members and calls).
    pub snap: Snapshot,
}

impl EnsembleWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Makes sure there is one coupled workspace per worker.
    pub(crate) fn ensure_workers(&mut self, threads: usize) {
        let want = threads.max(1);
        if self.workers.len() < want {
            self.workers.resize_with(want, CoupledWorkspace::new);
        }
    }

    /// Makes sure there is one store-exchange worker scratch per worker.
    pub(crate) fn ensure_store_workers(&mut self, threads: usize) {
        let want = threads.max(1);
        if self.store_workers.len() < want {
            self.store_workers.resize_with(want, StoreWorker::default);
        }
    }
}

/// Which analysis algorithm a cycle uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Stochastic EnKF applied directly to the model fields `(ψ, t_i)` —
    /// the baseline that Fig. 4(c) shows diverging.
    Standard,
    /// The morphing EnKF of §3.3 — Fig. 4(d).
    Morphing,
}

/// Initial-ensemble specification: the identical-twin setup of Fig. 4
/// ("the initial ensemble was created by a random perturbation of the
/// comparison solution, with the fire ignited at an intentionally incorrect
/// location").
#[derive(Debug, Clone)]
pub struct EnsembleSetup {
    /// Number of members (the paper uses 25).
    pub n_members: usize,
    /// Nominal (possibly wrong) ignition center (m).
    pub center: (f64, f64),
    /// Ignition radius (m).
    pub radius: f64,
    /// Std of the random per-member displacement of the ignition center (m).
    pub position_spread: f64,
    /// RNG seed for the perturbation draws.
    pub seed: u64,
}

/// Outcome metrics of one assimilation cycle.
#[derive(Debug, Clone, Copy)]
pub struct CycleReport {
    /// Metrics before the analysis (forecast fit).
    pub forecast: EnsembleMetrics,
    /// Metrics after the analysis.
    pub analysis: EnsembleMetrics,
}

/// Which analysis algorithm an observation-pool cycle runs.
#[derive(Debug, Clone, Copy)]
pub enum ObsFilter<'a> {
    /// Stochastic EnKF with multiplicative inflation (1 = none).
    Standard {
        /// Forecast inflation factor.
        inflation: f64,
    },
    /// Deterministic square-root filter (no observation perturbations).
    Etkf {
        /// Forecast inflation factor.
        inflation: f64,
    },
    /// Morphing EnKF driven by the pool's gridded-ψ stream.
    Morphing(&'a MorphingConfig),
}

/// Data-side outcome of one observation-pool cycle: RMS innovation of the
/// ensemble mean against the pooled measurements, before and after the
/// analysis. Unlike [`CycleReport`] this needs no truth state — it is the
/// metric available with *real* data.
#[derive(Debug, Clone, Copy)]
pub struct ObsCycleReport {
    /// RMS innovation after the forecast, before the analysis.
    pub forecast_innovation_rms: f64,
    /// RMS innovation after the analysis (synthetic observations
    /// re-evaluated on the analyzed members).
    pub analysis_innovation_rms: f64,
}

/// Outcome of one source-driven assimilation pass
/// ([`EnsembleDriver::cycle_source_ws`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SourceCycleReport {
    /// Analyses run (groups of reports within [`TIME_EPS`]).
    pub analyses: usize,
    /// Total reports assimilated across those analyses.
    pub reports_assimilated: usize,
    /// Innovation report of the last analysis, if any ran.
    pub last: Option<ObsCycleReport>,
}

/// The ensemble driver.
pub struct EnsembleDriver {
    /// The (shared, immutable) coupled model configuration.
    pub model: CoupledModel,
    /// Worker threads for member-parallel phases.
    pub threads: usize,
}

impl EnsembleDriver {
    /// Creates a driver.
    pub fn new(model: CoupledModel, threads: usize) -> Self {
        EnsembleDriver { model, threads }
    }

    /// Builds the initial ensemble per `setup`: every member ignited at the
    /// nominal center plus a Gaussian displacement. Draws go through the
    /// canonical [`wildfire_fire::ignition::displaced`] primitive, so this
    /// is bit-identical to `wildfire_sim::perturb` for equal seeds.
    pub fn initial_ensemble(&self, setup: &EnsembleSetup) -> Vec<CoupledState> {
        let mut rng = GaussianSampler::new(setup.seed);
        let nominal = [IgnitionShape::Circle {
            center: setup.center,
            radius: setup.radius,
        }];
        (0..setup.n_members)
            .map(|_| {
                let shapes =
                    wildfire_fire::ignition::displaced(&nominal, setup.position_spread, &mut rng);
                self.model.ignite(&shapes, 0.0)
            })
            .collect()
    }

    /// Advances all members to `t_target` in parallel (the forecast phase
    /// of Fig. 2). Member failures are collected and the first is returned.
    ///
    /// # Errors
    /// The first member failure, if any.
    pub fn forecast(&self, members: &mut [CoupledState], t_target: f64, dt: f64) -> Result<()> {
        let mut ws = EnsembleWorkspace::new();
        self.forecast_ws(members, t_target, dt, &mut ws)
    }

    /// Workspace-backed [`EnsembleDriver::forecast`]: each worker thread
    /// steps its members through its own [`CoupledWorkspace`] from `ws`, so
    /// the parallel path stays lock-free and bit-identical to sequential.
    /// All *stepping* buffers are reused; with `threads <= 1` the call is
    /// fully allocation-free in steady state, while `threads > 1` still
    /// spawns the scoped worker threads each call.
    ///
    /// # Errors
    /// The first member failure, if any.
    pub fn forecast_ws(
        &self,
        members: &mut [CoupledState],
        t_target: f64,
        dt: f64,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        ws.ensure_workers(self.threads);
        // Slice, don't pass the whole vec: a workspace previously grown by a
        // driver with more threads must not raise THIS driver's worker count
        // (parallel_for_each_ws spawns one worker per workspace handed in).
        let workers = &mut ws.workers[..self.threads.max(1)];
        let errors = parking_lot::Mutex::new(Vec::new());
        parallel_for_each_ws(members, workers, |i, state, cw| {
            if let Err(e) = self.model.run_ws(state, t_target, dt, cw, |_, _| {}) {
                errors.lock().push((i, e));
            }
        });
        let mut errs = errors.into_inner();
        if let Some((_, e)) = errs.drain(..).next() {
            return Err(e.into());
        }
        Ok(())
    }

    /// Forecast phase routed through a [`SnapshotStore`]: full-state member
    /// snapshots are saved, loaded back, advanced, and written again — the
    /// disk-file dataflow of Fig. 2, benchmarked in experiment E2. A thin
    /// allocating wrapper over [`EnsembleDriver::forecast_via_store_ws`],
    /// kept signature-compatible and pinned bit-identical to the direct
    /// forecast by the equivalence tests.
    ///
    /// # Errors
    /// Store or model failures.
    pub fn forecast_via_store(
        &self,
        members: &mut [CoupledState],
        store: &dyn SnapshotStore,
        t_target: f64,
        dt: f64,
    ) -> Result<()> {
        let mut ws = EnsembleWorkspace::new();
        self.forecast_via_store_ws(members, store, t_target, dt, &mut ws)
    }

    /// Workspace-backed [`EnsembleDriver::forecast_via_store`]: saves every
    /// member's snapshot, then runs the whole ensemble as shard 0 of 1
    /// through [`EnsembleDriver::forecast_shard_via_store`]. Each worker
    /// loads, steps, and stores through its own [`StoreWorker`] scratch, so
    /// with `threads <= 1` the exchange is allocation-free in steady state.
    ///
    /// # Errors
    /// Store or model failures.
    pub fn forecast_via_store_ws(
        &self,
        members: &mut [CoupledState],
        store: &dyn SnapshotStore,
        t_target: f64,
        dt: f64,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        ws.ensure_store_workers(self.threads);
        let snap = &mut ws.store_workers[0].snap;
        for (i, m) in members.iter().enumerate() {
            self.model.snapshot_into(m, None, snap);
            store.save(i, snap)?;
        }
        self.forecast_shard_via_store(members, 0, store, t_target, dt, ws)
    }

    /// Advances one *shard* of the ensemble through a [`SnapshotStore`]:
    /// member `first_member + i` is loaded from the store into `shard[i]`,
    /// stepped to `t_target`, and written back. This is the per-process
    /// worker of the sharded architecture — separate processes, each owning
    /// a contiguous member range and a workspace sized to it, exchange the
    /// whole ensemble through one disk directory; the union of the shard
    /// forecasts is bit-identical to a single-process
    /// [`EnsembleDriver::forecast_ws`] over all members.
    ///
    /// The caller's `shard` states serve as restore targets (their previous
    /// contents are fully overwritten), so a worker process can start from
    /// blank states built with [`CoupledModel::ignite`] on an empty shape
    /// list.
    ///
    /// # Errors
    /// Store failures, snapshots from a mismatching model configuration,
    /// or model failures.
    pub fn forecast_shard_via_store(
        &self,
        shard: &mut [CoupledState],
        first_member: usize,
        store: &dyn SnapshotStore,
        t_target: f64,
        dt: f64,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        ws.ensure_store_workers(self.threads);
        let workers = &mut ws.store_workers[..self.threads.max(1)];
        let errors = parking_lot::Mutex::new(Vec::new());
        parallel_for_each_ws(shard, workers, |i, state, sw| {
            let mut run = || -> Result<()> {
                let member = first_member + i;
                store.load_into(member, &mut sw.snap)?;
                self.model
                    .restore_from(state, Some(&mut sw.coupled), &sw.snap)
                    .map_err(EnsembleError::Store)?;
                self.model
                    .run_ws(state, t_target, dt, &mut sw.coupled, |_, _| {})?;
                self.model
                    .snapshot_into(state, Some(&sw.coupled), &mut sw.snap);
                store.save(member, &sw.snap)?;
                Ok(())
            };
            if let Err(e) = run() {
                errors.lock().push((i, e));
            }
        });
        let mut errs = errors.into_inner();
        if let Some((_, e)) = errs.drain(..).next() {
            return Err(e);
        }
        Ok(())
    }

    /// Captures the whole ensemble — every member's full coupled state
    /// (concatenated, member-major) plus the analysis RNG's provenance —
    /// into `snap`, reusing its buffers (allocation-free once warm). Record
    /// names are static (`ens/psi`, `ens/u`, …), so checkpointing N members
    /// every cycle never formats a per-member string.
    ///
    /// Per-worker φ warm-start scratch is *not* captured: it is tied to the
    /// member→worker mapping (a thread-count artifact), not to ensemble
    /// state. Resuming is bitwise-exact whenever the pressure projection
    /// seeds cold (the default); a warm-started projection re-warms within
    /// the first post-restore step.
    pub fn snapshot_into(
        &self,
        members: &[CoupledState],
        rng: &GaussianSampler,
        snap: &mut Snapshot,
    ) {
        model_fingerprint_into(&self.model, snap.record_mut(FINGERPRINT));
        snap.put_scalar("ens/n_members", members.len() as f64);
        let psi = snap.record_mut("ens/psi");
        for m in members {
            psi.extend_from_slice(m.fire.psi.as_slice());
        }
        let tig = snap.record_mut("ens/tig");
        for m in members {
            encode_tig_into(m.fire.tig.as_slice(), tig);
        }
        let ft = snap.record_mut("ens/fire_time");
        ft.extend(members.iter().map(|m| m.fire.time));
        for (name, pick) in [
            ("ens/u", 0usize),
            ("ens/v", 1),
            ("ens/w", 2),
            ("ens/theta", 3),
            ("ens/qv", 4),
        ] {
            let rec = snap.record_mut(name);
            for m in members {
                let src: &[f64] = match pick {
                    0 => &m.atmos.u,
                    1 => &m.atmos.v,
                    2 => &m.atmos.w,
                    3 => &m.atmos.theta,
                    _ => &m.atmos.qv,
                };
                rec.extend_from_slice(src);
            }
        }
        let at = snap.record_mut("ens/atmos_time");
        at.extend(members.iter().map(|m| m.atmos.time));
        let (words, spare) = rng.state();
        let r = snap.record_mut("ens/rng");
        r.extend(words.iter().map(|&w| f64::from_bits(w)));
        r.push(if spare.is_some() { 1.0 } else { 0.0 });
        r.push(spare.unwrap_or(0.0));
    }

    /// Restores a whole-ensemble checkpoint written by
    /// [`EnsembleDriver::snapshot_into`] into `members` (which must already
    /// hold the checkpointed member count — states are overwritten in
    /// place) and `rng`. All validation happens before any member is
    /// touched, so a rejected snapshot leaves the ensemble intact.
    ///
    /// # Errors
    /// Missing records, a fingerprint from a different model configuration,
    /// or any member-count/field-size mismatch.
    pub fn restore_from(
        &self,
        members: &mut [CoupledState],
        rng: &mut GaussianSampler,
        snap: &Snapshot,
    ) -> Result<()> {
        check_model_fingerprint(&self.model, snap).map_err(EnsembleError::Store)?;
        let n = snap
            .get_scalar("ens/n_members")
            .map_err(EnsembleError::Store)? as usize;
        if n != members.len() {
            return Err(EnsembleError::Config(
                "checkpoint member count does not match the ensemble",
            ));
        }
        let fg_len = self.model.fire_grid.len();
        let ag = self.model.atmos.grid;
        let n_uv = ag.nx * ag.ny * ag.nz;
        let n_w = ag.nx * ag.ny * (ag.nz + 1);
        let n_c = ag.n_cells();
        let want = [
            ("ens/psi", n * fg_len),
            ("ens/tig", n * fg_len),
            ("ens/fire_time", n),
            ("ens/u", n * n_uv),
            ("ens/v", n * n_uv),
            ("ens/w", n * n_w),
            ("ens/theta", n * n_c),
            ("ens/qv", n * n_c),
            ("ens/atmos_time", n),
            ("ens/rng", 6),
        ];
        for (name, len) in want {
            if snap.get(name).map_err(EnsembleError::Store)?.len() != len {
                return Err(EnsembleError::Config("checkpoint record size mismatch"));
            }
        }
        let fg = self.model.fire_grid;
        let psi = snap.get("ens/psi").expect("validated");
        let tig = snap.get("ens/tig").expect("validated");
        let ft = snap.get("ens/fire_time").expect("validated");
        let u = snap.get("ens/u").expect("validated");
        let v = snap.get("ens/v").expect("validated");
        let w = snap.get("ens/w").expect("validated");
        let theta = snap.get("ens/theta").expect("validated");
        let qv = snap.get("ens/qv").expect("validated");
        let at = snap.get("ens/atmos_time").expect("validated");
        for (i, m) in members.iter_mut().enumerate() {
            m.fire.psi.resize_no_zero(fg);
            m.fire
                .psi
                .as_mut_slice()
                .copy_from_slice(&psi[i * fg_len..(i + 1) * fg_len]);
            m.fire.tig.resize_no_zero(fg);
            decode_tig_into(
                &tig[i * fg_len..(i + 1) * fg_len],
                m.fire.tig.as_mut_slice(),
            );
            m.fire.time = ft[i];
            for (dst, src, stride) in [
                (&mut m.atmos.u, u, n_uv),
                (&mut m.atmos.v, v, n_uv),
                (&mut m.atmos.w, w, n_w),
                (&mut m.atmos.theta, theta, n_c),
                (&mut m.atmos.qv, qv, n_c),
            ] {
                dst.clear();
                dst.extend_from_slice(&src[i * stride..(i + 1) * stride]);
            }
            m.atmos.grid = ag;
            m.atmos.time = at[i];
        }
        let r = snap.get("ens/rng").expect("validated");
        let words = [
            r[0].to_bits(),
            r[1].to_bits(),
            r[2].to_bits(),
            r[3].to_bits(),
        ];
        *rng = GaussianSampler::from_state(words, (r[4] != 0.0).then_some(r[5]));
        Ok(())
    }

    /// Standard-EnKF analysis directly on the model fields (Fig. 4(c)
    /// baseline): state vector `[ψ, t_i]`, observations are the truth's ψ
    /// values at every `obs_stride`-th fire-mesh node.
    ///
    /// # Errors
    /// Filter failures.
    pub fn analyze_standard(
        &self,
        members: &mut [CoupledState],
        truth_fire: &FireState,
        obs_stride: usize,
        sigma_obs: f64,
        inflation: f64,
        rng: &mut GaussianSampler,
    ) -> Result<()> {
        let mut ws = EnsembleWorkspace::new();
        self.analyze_standard_ws(
            members, truth_fire, obs_stride, sigma_obs, inflation, rng, &mut ws,
        )
    }

    /// Workspace-backed [`EnsembleDriver::analyze_standard`] — since the
    /// observation-pool redesign a thin identical-twin wrapper over
    /// [`EnsembleDriver::analyze_obs_ws`]: the strided-ψ sampling is a
    /// [`StridedPsi`] operator and the "real data" is the noise-free truth
    /// ψ at the observed nodes. The dense buffers come from `ws` (only the
    /// one-entry pool descriptor is rebuilt per call); bit-identical to
    /// both the allocating wrapper and the seed's inlined `obs_stride`
    /// implementation.
    ///
    /// # Errors
    /// Filter failures.
    #[allow(clippy::too_many_arguments)]
    pub fn analyze_standard_ws(
        &self,
        members: &mut [CoupledState],
        truth_fire: &FireState,
        obs_stride: usize,
        sigma_obs: f64,
        inflation: f64,
        rng: &mut GaussianSampler,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        let op = StridedPsi::new(truth_fire.grid(), obs_stride, sigma_obs);
        // Take the measurement buffer out of the workspace so the pool can
        // borrow it while the rest of `ws` is threaded through the analysis.
        let mut data = std::mem::take(&mut ws.data);
        data.clear();
        let measured = op.measure_truth_into(truth_fire, &mut data);
        let result = measured.map_err(EnsembleError::Store).and_then(|()| {
            let mut pool = ObsSet::new();
            pool.push(&op, &data).map_err(EnsembleError::Store)?;
            self.analyze_obs_ws(members, &pool, inflation, rng, ws)
        });
        ws.data = data;
        result
    }

    /// Generic stochastic-EnKF analysis against a heterogeneous observation
    /// pool (Fig. 2's "real data pool"): the pool packs any mix of
    /// operators + measurements into `(y, H(X), R)`, the filter never sees
    /// the instruments. The packed buffers live in `ws` and are reused, so
    /// repeated analyses through one workspace are allocation-free in
    /// steady state (for allocation-free operators; see
    /// [`wildfire_obs::operator`]).
    ///
    /// # Errors
    /// Observation-operator and filter failures.
    pub fn analyze_obs_ws(
        &self,
        members: &mut [CoupledState],
        pool: &ObsSet<'_>,
        inflation: f64,
        rng: &mut GaussianSampler,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        self.pack_pool_ws(members, pool, ws)?;
        self.analyze_packed_ws(members, inflation, rng, ws)
    }

    /// Member-parallel [`ObsSet::pack_into`]: the member-independent `y`/`R`
    /// stacking runs once, then the `H(X)` columns are filled over the
    /// worker pool (one contiguous chunk of member columns per worker, each
    /// worker with its own [`ObsScratch`] from `ws.obs_scratch`) — the
    /// Fig. 2 fan-out of the observation function over the "subsets of
    /// processors". Column contents are independent of the partitioning, so
    /// the packed `(y, H(X), R)` is bit-identical to the serial
    /// `pack_into` for every thread count (pinned by test).
    ///
    /// # Errors
    /// Operator failures (first one wins, as in the forecast fan-out).
    fn pack_pool_ws(
        &self,
        members: &[CoupledState],
        pool: &ObsSet<'_>,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        pool.pack_fixed_into(members.len(), &mut ws.obs);
        let m = pool.total_dim();
        if m == 0 || members.is_empty() {
            return Ok(());
        }
        let workers = self.threads.max(1).min(members.len());
        if ws.obs_scratch.len() < workers {
            ws.obs_scratch.resize_with(workers, ObsScratch::new);
        }
        let errors = parking_lot::Mutex::new(Vec::new());
        parallel_for_each_column_ws(
            ws.obs.hx.as_mut_slice(),
            m,
            &mut ws.obs_scratch[..workers],
            |j, col, scratch| {
                if let Err(e) = pool.pack_member_column(&members[j], col, scratch) {
                    errors.lock().push((j, e));
                }
            },
        );
        let mut errs = errors.into_inner();
        if let Some((_, e)) = errs.drain(..).next() {
            return Err(EnsembleError::Store(e));
        }
        Ok(())
    }

    /// [`EnsembleDriver::analyze_obs_ws`] minus the pool packing: assumes
    /// `ws.obs` already holds `(y, H(X), R)` for the *current* member
    /// states — the seam [`EnsembleDriver::cycle_obs_ws`] uses to avoid
    /// re-evaluating every observation operator right after packing them
    /// for the innovation report.
    fn analyze_packed_ws(
        &self,
        members: &mut [CoupledState],
        inflation: f64,
        rng: &mut GaussianSampler,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        self.pack_members(members, ws)?;
        let filter = ParallelEnkf::new(self.threads, inflation);
        filter.analyze_ws(
            &mut ws.x,
            &ws.obs.hx,
            &ws.obs.data,
            &ws.obs.var,
            rng,
            &mut ws.analysis,
        )?;
        self.unpack_members(members, ws);
        Ok(())
    }

    /// Deterministic square-root (ETKF) analysis against an observation
    /// pool — the sampling-noise-free cross-check variant. Same packing and
    /// workspace contract as [`EnsembleDriver::analyze_obs_ws`]; no RNG is
    /// consumed.
    ///
    /// # Errors
    /// Observation-operator and filter failures.
    pub fn analyze_obs_etkf_ws(
        &self,
        members: &mut [CoupledState],
        pool: &ObsSet<'_>,
        inflation: f64,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        self.pack_pool_ws(members, pool, ws)?;
        self.analyze_packed_etkf_ws(members, inflation, ws)
    }

    /// [`EnsembleDriver::analyze_obs_etkf_ws`] minus the pool packing (see
    /// [`EnsembleDriver::analyze_packed_ws`]).
    fn analyze_packed_etkf_ws(
        &self,
        members: &mut [CoupledState],
        inflation: f64,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        self.pack_members(members, ws)?;
        let filter = Etkf::new(inflation);
        filter
            .analyze_ws(
                &mut ws.x,
                &ws.obs.hx,
                &ws.obs.data,
                &ws.obs.var,
                &mut ws.analysis,
            )
            .map_err(EnsembleError::Filter)?;
        self.unpack_members(members, ws);
        Ok(())
    }

    /// Morphing-EnKF analysis against an observation pool (Fig. 4(d) with
    /// real data streams). The morphing filter needs a *field-valued*
    /// observation to register against, so the pool must contain at least
    /// one gridded-ψ stream (an operator whose
    /// [`wildfire_obs::ObservationOperator::scatter_psi`] succeeds — e.g.
    /// [`StridedPsi`]); its measurements are scattered back onto the fire
    /// mesh and drive registration + amplitude analysis exactly like the
    /// truth field in [`EnsembleDriver::analyze_morphing_ws`]. Pointwise
    /// streams (stations) cannot be registered and are ignored by this
    /// variant — pool them through [`EnsembleDriver::analyze_obs_ws`]
    /// instead or alongside. Requires `config.observed_fields == [0]` (the
    /// ψ block; the ignition-time field has no gridded data stream).
    ///
    /// # Errors
    /// [`EnsembleError::Config`] when no gridded-ψ entry is present or the
    /// observed-field set is unsupported; filter failures.
    pub fn analyze_obs_morphing_ws(
        &self,
        members: &mut [CoupledState],
        pool: &ObsSet<'_>,
        config: &MorphingConfig,
        rng: &mut GaussianSampler,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        if config.observed_fields != [0] {
            return Err(EnsembleError::Config(
                "the observation-pool morphing path assimilates the gridded ψ stream; \
                 only field 0 can be observed",
            ));
        }
        let mut psi_data = std::mem::take(&mut ws.psi_data);
        let found = pool
            .entries()
            .iter()
            .any(|e| e.op.scatter_psi(e.data, &mut psi_data));
        let result = if found {
            self.analyze_morphing_fields_ws(members, &psi_data, None, config, rng, ws)
        } else {
            Err(EnsembleError::Config(
                "morphing analysis needs a gridded-psi observation stream in the pool",
            ))
        };
        ws.psi_data = psi_data;
        result
    }

    /// Morphing-EnKF analysis (Fig. 4(d)): members are registered against a
    /// reference member in parallel, the inner EnKF runs on extended states
    /// `[r, T]`, and the results are morphed back.
    ///
    /// # Errors
    /// Filter failures.
    pub fn analyze_morphing(
        &self,
        members: &mut [CoupledState],
        truth_fire: &FireState,
        config: &MorphingConfig,
        rng: &mut GaussianSampler,
    ) -> Result<()> {
        let mut ws = EnsembleWorkspace::new();
        self.analyze_morphing_ws(members, truth_fire, config, rng, &mut ws)
    }

    /// Workspace-backed [`EnsembleDriver::analyze_morphing`]: the inner
    /// EnKF's packed matrices and dense temporaries come from `ws.morph`,
    /// and the parallel registration phase draws per-worker scratch
    /// pyramids from `ws.reg_pool` (the per-member extended states are
    /// returned values, not scratch, and remain the only per-cycle
    /// registration allocations). Bit-identical to the allocating wrapper.
    ///
    /// # Errors
    /// Filter failures.
    pub fn analyze_morphing_ws(
        &self,
        members: &mut [CoupledState],
        truth_fire: &FireState,
        config: &MorphingConfig,
        rng: &mut GaussianSampler,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        let capped_tig = Field2::from_vec(
            truth_fire.psi.grid(),
            truth_fire
                .tig
                .as_slice()
                .iter()
                .map(|&t| t.min(TIG_CAP))
                .collect(),
        );
        self.analyze_morphing_fields_ws(
            members,
            &truth_fire.psi,
            Some(&capped_tig),
            config,
            rng,
            ws,
        )
    }

    /// Shared morphing analysis against field-valued data: `psi_data` is
    /// the observed ψ field; `tig_data` the (capped) ignition-time data
    /// field, or `None` to stand in the reference member's own — only valid
    /// when field 1 is unobserved, as the observation-pool path enforces.
    ///
    /// # Errors
    /// Filter failures.
    fn analyze_morphing_fields_ws(
        &self,
        members: &mut [CoupledState],
        psi_data: &Field2,
        tig_data: Option<&Field2>,
        config: &MorphingConfig,
        rng: &mut GaussianSampler,
        ws: &mut EnsembleWorkspace,
    ) -> Result<()> {
        let n_ens = members.len();
        if n_ens < 2 {
            return Err(EnsembleError::Config("need at least 2 members"));
        }
        let filter = MorphingEnkf::new(config.clone());
        let time = members[0].time();

        // Field layout per member: [ψ, capped t_i].
        let to_fields = |f: &FireState| -> Vec<Field2> {
            let g = f.psi.grid();
            let capped = Field2::from_vec(
                g,
                f.tig.as_slice().iter().map(|&t| t.min(TIG_CAP)).collect(),
            );
            vec![f.psi.clone(), capped]
        };
        let reference = to_fields(&members[0].fire);
        // Assemble the data fields in the reusable workspace slots (values
        // identical to cloning, no per-analysis grid-sized allocation).
        if ws.data_fields.len() != 2 {
            ws.data_fields = vec![Field2::default(), Field2::default()];
        }
        ws.data_fields[0].copy_from(psi_data);
        ws.data_fields[1].copy_from(tig_data.unwrap_or(&reference[1]));

        // Parallel registrations (the expensive transform phase): members
        // are stolen from a shared cursor by workers that each reuse a
        // pooled registration scratch pyramid, so the steady-state per-cycle
        // allocations are the returned extended states themselves.
        let workers = self.threads.max(1);
        if ws.reg_pool.len() < workers {
            ws.reg_pool.resize_with(workers, RegistrationWorkspace::new);
        }
        type ExtResult = std::result::Result<ExtendedState, wildfire_enkf::EnkfError>;
        let mut reg_items: Vec<(Vec<Field2>, Option<ExtResult>)> =
            members.iter().map(|m| (to_fields(&m.fire), None)).collect();
        parallel_for_each_dynamic_ws(
            &mut reg_items,
            &mut ws.reg_pool[..workers],
            |_, item, reg| {
                item.1 = Some(filter.to_extended_ws(&item.0, &reference, 0, reg));
            },
        );
        let mut ext_states = Vec::with_capacity(n_ens);
        for (_, e) in reg_items {
            ext_states.push(e.expect("registered").map_err(EnsembleError::Filter)?);
        }
        let data_ext = filter
            .to_extended_ws(&ws.data_fields, &reference, 0, &mut ws.morph.reg)
            .map_err(EnsembleError::Filter)?;

        let analyzed = filter
            .analyze_extended_ws(&ext_states, &data_ext, &reference, rng, &mut ws.morph)
            .map_err(EnsembleError::Filter)?;

        for (m, fields) in members.iter_mut().zip(analyzed) {
            let g = fields[0].grid();
            let tig = Field2::from_vec(
                g,
                fields[1]
                    .as_slice()
                    .iter()
                    .map(|&t| {
                        if t >= TIG_CAP * 0.99 {
                            wildfire_fire::UNBURNED
                        } else {
                            t
                        }
                    })
                    .collect(),
            );
            let mut fire = FireState {
                psi: fields.into_iter().next().expect("two fields"),
                tig,
                time,
            };
            fire.sanitize(TIG_CAP * 0.99, time);
            m.fire = fire;
        }
        Ok(())
    }

    /// Packs the member fire states into the filter matrix `ws.x`
    /// (`[ψ, capped t_i]` per column).
    fn pack_members(&self, members: &[CoupledState], ws: &mut EnsembleWorkspace) -> Result<()> {
        let n_ens = members.len();
        if n_ens < 2 {
            return Err(EnsembleError::Config("need at least 2 members"));
        }
        let n_state = 2 * members[0].fire.grid().len();
        ws.x.resize_zeroed(n_state, n_ens);
        for (j, m) in members.iter().enumerate() {
            m.fire.pack_into(TIG_CAP, ws.x.col_mut(j));
        }
        Ok(())
    }

    /// Unpacks `ws.x` back into the member fire states and restores the
    /// `(ψ, t_i)` invariants the analysis may have mixed.
    fn unpack_members(&self, members: &mut [CoupledState], ws: &EnsembleWorkspace) {
        let time = members[0].time();
        for (j, m) in members.iter_mut().enumerate() {
            m.fire.unpack_into(ws.x.col(j), TIG_CAP * 0.99, time);
            m.fire.sanitize(TIG_CAP * 0.99, time);
        }
    }

    /// One full data-driven cycle against an observation pool: forecast all
    /// members to `t_target`, pack the pool, analyze with the chosen
    /// filter, and report the RMS innovation before and after — the Fig. 2
    /// loop with the data source fully abstracted behind the pool. The
    /// caller assembles the [`ObsSet`] for this analysis time (typically by
    /// walking an [`wildfire_obs::ObsTimeline`]).
    ///
    /// # Errors
    /// Model, observation-operator, and filter failures.
    #[allow(clippy::too_many_arguments)]
    pub fn cycle_obs_ws(
        &self,
        members: &mut [CoupledState],
        pool: &ObsSet<'_>,
        filter: ObsFilter<'_>,
        t_target: f64,
        dt: f64,
        rng: &mut GaussianSampler,
        ws: &mut EnsembleWorkspace,
    ) -> Result<ObsCycleReport> {
        self.forecast_ws(members, t_target, dt, ws)?;
        self.pack_pool_ws(members, pool, ws)?;
        let forecast_innovation_rms = ws.obs.innovation_rms();
        // `ws.obs` is already packed for the forecast states; the packed
        // analysis variants reuse it instead of re-evaluating every
        // operator on unchanged members.
        match filter {
            ObsFilter::Standard { inflation } => {
                self.analyze_packed_ws(members, inflation, rng, ws)?;
            }
            ObsFilter::Etkf { inflation } => {
                self.analyze_packed_etkf_ws(members, inflation, ws)?;
            }
            ObsFilter::Morphing(config) => {
                self.analyze_obs_morphing_ws(members, pool, config, rng, ws)?;
            }
        }
        self.pack_pool_ws(members, pool, ws)?;
        Ok(ObsCycleReport {
            forecast_innovation_rms,
            analysis_innovation_rms: ws.obs.innovation_rms(),
        })
    }

    /// Source-driven assimilation up to `t_target` (ROADMAP's lazy
    /// ingestion): polls `source` for whatever reports have become due,
    /// groups reports within [`TIME_EPS`] into one analysis each (the same
    /// merge rule [`wildfire_obs::ObsTimeline::analysis_times`] applies),
    /// and runs one [`EnsembleDriver::cycle_obs_ws`] per group — forecast
    /// to the group time, analyze the pooled reports, report innovations.
    /// After the source runs dry the members are forecast the rest of the
    /// way to `t_target`. Driving this with a
    /// [`wildfire_obs::TimelineSource`] reproduces the eager
    /// expand-then-walk loop bit for bit (pinned by test); channel- or
    /// file-fed sources assimilate whatever actually arrived instead.
    ///
    /// `operators[s]` realizes stream `s` (index-aligned with the reports'
    /// `stream` fields; see [`wildfire_obs::ObsStreamSpec::build_operator`]).
    /// A report whose nominal time is already behind the members (late
    /// data the drop policy let through) is assimilated at the members'
    /// current time — the forecast simply does not step backwards.
    /// `inbox` is caller scratch, recycled internally; reports appended
    /// after this call's polls are picked up next call.
    ///
    /// # Errors
    /// Source, model, observation-operator, and filter failures. On error,
    /// already-analyzed groups keep their effect (the members are left at
    /// the last successfully analyzed state).
    #[allow(clippy::too_many_arguments)]
    pub fn cycle_source_ws(
        &self,
        members: &mut [CoupledState],
        source: &mut dyn ObsSource,
        inbox: &mut ObsInbox,
        operators: &[Box<dyn ObservationOperator>],
        filter: ObsFilter<'_>,
        t_target: f64,
        dt: f64,
        rng: &mut GaussianSampler,
        ws: &mut EnsembleWorkspace,
    ) -> Result<SourceCycleReport> {
        let mut report = SourceCycleReport::default();
        if members.is_empty() {
            return Ok(report);
        }
        // Drain-and-analyze until the source has nothing more due at
        // t_target: a channel may receive further reports while earlier
        // analyses run, and those must not wait for the next call.
        loop {
            inbox.recycle();
            source.poll(t_target, inbox).map_err(EnsembleError::Store)?;
            if inbox.due.is_empty() {
                break;
            }
            let mut start = 0;
            while start < inbox.due.len() {
                let t_group = inbox.due[start].time;
                let mut end = start + 1;
                while end < inbox.due.len() && inbox.due[end].time <= t_group + TIME_EPS {
                    end += 1;
                }
                let mut pool = ObsSet::new();
                for r in &inbox.due[start..end] {
                    let op = operators.get(r.stream).ok_or(EnsembleError::Config(
                        "observation report references an unknown stream",
                    ))?;
                    pool.push(op.as_ref(), &r.data)
                        .map_err(EnsembleError::Store)?;
                }
                // Late data never steps the members backwards: the group's
                // forecast target is clamped to the current member time.
                let t_analysis = t_group.max(members[0].time());
                let cycle = self.cycle_obs_ws(members, &pool, filter, t_analysis, dt, rng, ws)?;
                report.analyses += 1;
                report.reports_assimilated += end - start;
                report.last = Some(cycle);
                start = end;
            }
        }
        inbox.recycle();
        if members[0].time() < t_target - TIME_EPS {
            self.forecast_ws(members, t_target, dt, ws)?;
        }
        Ok(report)
    }

    /// One full cycle: forecast to `t_target`, evaluate, analyze with the
    /// chosen filter, evaluate again.
    ///
    /// # Errors
    /// Model and filter failures.
    #[allow(clippy::too_many_arguments)]
    pub fn cycle(
        &self,
        members: &mut [CoupledState],
        truth: &CoupledState,
        filter: FilterKind,
        t_target: f64,
        dt: f64,
        morphing_config: &MorphingConfig,
        rng: &mut GaussianSampler,
    ) -> Result<CycleReport> {
        let mut ws = EnsembleWorkspace::new();
        self.cycle_ws(
            members,
            truth,
            filter,
            t_target,
            dt,
            morphing_config,
            rng,
            &mut ws,
        )
    }

    /// Workspace-backed [`EnsembleDriver::cycle`]: the forecast runs through
    /// per-worker [`CoupledWorkspace`]s and the analysis through the packed
    /// filter scratch, so repeated cycles with one [`EnsembleWorkspace`]
    /// reuse every dense stepping/analysis buffer. Remaining allocations:
    /// the two metrics evaluations (per-member component masks), the
    /// standard path's one-entry pool descriptor (the `obs_stride` wrapper
    /// builds a [`StridedPsi`] + [`ObsSet`] per call), plus — with
    /// `threads > 1` — the scoped worker threads. Bit-identical to the
    /// allocating wrapper.
    ///
    /// # Errors
    /// Model and filter failures.
    #[allow(clippy::too_many_arguments)]
    pub fn cycle_ws(
        &self,
        members: &mut [CoupledState],
        truth: &CoupledState,
        filter: FilterKind,
        t_target: f64,
        dt: f64,
        morphing_config: &MorphingConfig,
        rng: &mut GaussianSampler,
        ws: &mut EnsembleWorkspace,
    ) -> Result<CycleReport> {
        self.forecast_ws(members, t_target, dt, ws)?;
        let forecast = evaluate_coupled_ensemble(members, truth);
        match filter {
            FilterKind::Standard => {
                self.analyze_standard_ws(members, &truth.fire, 7, 2.0, 1.0, rng, ws)?
            }
            FilterKind::Morphing => {
                self.analyze_morphing_ws(members, &truth.fire, morphing_config, rng, ws)?
            }
        }
        let analysis = evaluate_coupled_ensemble(members, truth);
        Ok(CycleReport { forecast, analysis })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use wildfire_atmos::state::AtmosGrid;
    use wildfire_atmos::AtmosParams;
    use wildfire_enkf::RegistrationConfig;
    use wildfire_fuel::FuelCategory;

    fn driver(threads: usize) -> EnsembleDriver {
        let model = CoupledModel::new(
            AtmosGrid {
                nx: 6,
                ny: 6,
                nz: 4,
                dx: 60.0,
                dy: 60.0,
                dz: 50.0,
            },
            AtmosParams::default(),
            FuelCategory::ShortGrass,
            4,
        )
        .unwrap();
        EnsembleDriver::new(model, threads)
    }

    fn setup(n: usize) -> EnsembleSetup {
        EnsembleSetup {
            n_members: n,
            center: (180.0, 180.0),
            radius: 25.0,
            position_spread: 15.0,
            seed: 99,
        }
    }

    #[test]
    fn initial_ensemble_is_perturbed() {
        let d = driver(1);
        let members = d.initial_ensemble(&setup(6));
        assert_eq!(members.len(), 6);
        // Not all members identical.
        let a0 = members[0].fire.burned_area();
        assert!(a0 > 0.0);
        let centroids: Vec<_> = members
            .iter()
            .map(|m| wildfire_fire::perimeter::burned_centroid(&m.fire.psi).unwrap())
            .collect();
        assert!(centroids.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn parallel_forecast_matches_serial() {
        let d1 = driver(1);
        let d4 = driver(4);
        let mut serial = d1.initial_ensemble(&setup(5));
        let mut parallel = serial.clone();
        d1.forecast(&mut serial, 2.0, 0.5).unwrap();
        d4.forecast(&mut parallel, 2.0, 0.5).unwrap();
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(
                a.fire.psi, b.fire.psi,
                "parallel forecast must be deterministic"
            );
            assert_eq!(a.atmos.theta, b.atmos.theta);
        }
    }

    #[test]
    fn store_routed_forecast_matches_direct() {
        let d = driver(2);
        let mut direct = d.initial_ensemble(&setup(4));
        let mut routed = direct.clone();
        d.forecast(&mut direct, 1.5, 0.5).unwrap();
        let store = MemStore::new();
        d.forecast_via_store(&mut routed, &store, 1.5, 0.5).unwrap();
        for (a, b) in direct.iter().zip(routed.iter()) {
            assert_eq!(a.fire.psi, b.fire.psi);
            assert_eq!(a.fire.tig, b.fire.tig);
        }
        assert_eq!(store.members().len(), 4);
    }

    #[test]
    fn standard_analysis_pulls_psi_toward_truth() {
        let d = driver(2);
        let mut members = d.initial_ensemble(&setup(8));
        let truth = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (200.0, 200.0),
                radius: 25.0,
            }],
            0.0,
        );
        let before: f64 = members
            .iter()
            .map(|m| m.fire.psi.rmse(&truth.fire.psi).unwrap())
            .sum::<f64>()
            / 8.0;
        let mut rng = GaussianSampler::new(5);
        d.analyze_standard(&mut members, &truth.fire, 5, 1.0, 1.0, &mut rng)
            .unwrap();
        let after: f64 = members
            .iter()
            .map(|m| m.fire.psi.rmse(&truth.fire.psi).unwrap())
            .sum::<f64>()
            / 8.0;
        assert!(after < before, "ψ RMSE must drop: {before} → {after}");
        for m in &members {
            assert!(m.fire.is_consistent());
        }
    }

    #[test]
    fn morphing_analysis_moves_displaced_ensemble() {
        let d = driver(2);
        // Ensemble at the wrong location (Fig. 4 setup).
        let mut members = d.initial_ensemble(&EnsembleSetup {
            n_members: 6,
            center: (140.0, 140.0),
            radius: 25.0,
            position_spread: 10.0,
            seed: 7,
        });
        let truth = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (240.0, 240.0),
                radius: 25.0,
            }],
            0.0,
        );
        let cfg = MorphingConfig {
            registration: RegistrationConfig {
                max_shift: 160.0,
                shift_samples: 9,
                levels: vec![3],
                iterations: 20,
                ..Default::default()
            },
            sigma_amplitude: 2.0,
            sigma_displacement: 4.0,
            observed_fields: vec![0],
            ..Default::default()
        };
        let before = evaluate_coupled_ensemble(&members, &truth);
        let mut rng = GaussianSampler::new(11);
        d.analyze_morphing(&mut members, &truth.fire, &cfg, &mut rng)
            .unwrap();
        let after = evaluate_coupled_ensemble(&members, &truth);
        assert!(
            after.mean_position_error < 0.6 * before.mean_position_error,
            "morphing must close the position gap: {} → {}",
            before.mean_position_error,
            after.mean_position_error
        );
        for m in &members {
            assert!(m.fire.is_consistent());
            assert!(m.fire.burned_area() > 0.0, "fire must survive the morph");
        }
    }

    #[test]
    fn workspace_cycle_matches_allocating_cycle_bitwise() {
        let d = driver(3);
        let truth = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (200.0, 200.0),
                radius: 25.0,
            }],
            0.0,
        );
        let cfg = MorphingConfig::default();

        let mut alloc = d.initial_ensemble(&setup(6));
        let mut with_ws = alloc.clone();
        let mut ws = EnsembleWorkspace::new();
        let mut rng_a = GaussianSampler::new(3);
        let mut rng_b = GaussianSampler::new(3);
        // Two consecutive cycles through ONE workspace must stay
        // bit-identical to the allocating path.
        for k in 0..2 {
            let t = 1.0 + k as f64;
            d.cycle(
                &mut alloc,
                &truth,
                FilterKind::Standard,
                t,
                0.5,
                &cfg,
                &mut rng_a,
            )
            .unwrap();
            d.cycle_ws(
                &mut with_ws,
                &truth,
                FilterKind::Standard,
                t,
                0.5,
                &cfg,
                &mut rng_b,
                &mut ws,
            )
            .unwrap();
            for (a, b) in alloc.iter().zip(with_ws.iter()) {
                assert_eq!(a.fire.psi, b.fire.psi, "cycle {k}");
                assert_eq!(a.fire.tig, b.fire.tig, "cycle {k}");
                assert_eq!(a.atmos.theta, b.atmos.theta, "cycle {k}");
            }
        }
    }

    #[test]
    fn explicit_strided_pool_matches_legacy_obs_stride_path_bitwise() {
        // The demoted `obs_stride` wrapper and a hand-assembled
        // StridedPsi + ObsSet must be the same analysis, bit for bit —
        // the seed behavior is pinned through the new seam.
        let d = driver(2);
        let truth = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (210.0, 200.0),
                radius: 25.0,
            }],
            0.0,
        );
        let mut legacy = d.initial_ensemble(&setup(7));
        let mut pooled = legacy.clone();
        let (stride, sigma, inflation) = (5, 1.5, 1.02);

        let mut rng_a = GaussianSampler::new(31);
        let mut ws_a = EnsembleWorkspace::new();
        d.analyze_standard_ws(
            &mut legacy,
            &truth.fire,
            stride,
            sigma,
            inflation,
            &mut rng_a,
            &mut ws_a,
        )
        .unwrap();

        let op = wildfire_obs::StridedPsi::new(truth.fire.grid(), stride, sigma);
        let mut data = Vec::new();
        op.measure_truth_into(&truth.fire, &mut data).unwrap();
        let mut pool = wildfire_obs::ObsSet::new();
        pool.push(&op, &data).unwrap();
        let mut rng_b = GaussianSampler::new(31);
        let mut ws_b = EnsembleWorkspace::new();
        d.analyze_obs_ws(&mut pooled, &pool, inflation, &mut rng_b, &mut ws_b)
            .unwrap();

        for (a, b) in legacy.iter().zip(pooled.iter()) {
            assert_eq!(a.fire.psi, b.fire.psi, "ψ must match bitwise");
            assert_eq!(a.fire.tig, b.fire.tig, "t_i must match bitwise");
        }
    }

    #[test]
    fn heterogeneous_pool_pulls_ensemble_toward_truth() {
        // Strided ψ + a 4-station temperature network in ONE analysis.
        let d = driver(2);
        let truth = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (200.0, 200.0),
                radius: 25.0,
            }],
            0.0,
        );
        let mut members = d.initial_ensemble(&setup(8));

        let psi_op = wildfire_obs::StridedPsi::new(truth.fire.grid(), 5, 1.0);
        let mut psi_data = Vec::new();
        psi_op
            .measure_truth_into(&truth.fire, &mut psi_data)
            .unwrap();
        let st_op = wildfire_obs::StationTemperatures::new(
            vec![
                wildfire_obs::WeatherStation::new("S0", 120.0, 120.0),
                wildfire_obs::WeatherStation::new("S1", 240.0, 120.0),
                wildfire_obs::WeatherStation::new("S2", 120.0, 240.0),
                wildfire_obs::WeatherStation::new("S3", 240.0, 240.0),
            ],
            300.0,
            1.0,
        );
        let mut st_data = Vec::new();
        let mut rng_data = GaussianSampler::new(8);
        wildfire_obs::synthesize_measurements(&st_op, &truth, &mut rng_data, &mut st_data).unwrap();

        let mut pool = wildfire_obs::ObsSet::new();
        pool.push(&psi_op, &psi_data).unwrap();
        pool.push(&st_op, &st_data).unwrap();
        assert_eq!(pool.len(), 2);

        let before: f64 = members
            .iter()
            .map(|m| m.fire.psi.rmse(&truth.fire.psi).unwrap())
            .sum::<f64>()
            / 8.0;
        let mut rng = GaussianSampler::new(5);
        let mut ws = EnsembleWorkspace::new();
        d.analyze_obs_ws(&mut members, &pool, 1.0, &mut rng, &mut ws)
            .unwrap();
        let after: f64 = members
            .iter()
            .map(|m| m.fire.psi.rmse(&truth.fire.psi).unwrap())
            .sum::<f64>()
            / 8.0;
        assert!(after < before, "ψ RMSE must drop: {before} → {after}");
        for m in &members {
            assert!(m.fire.is_consistent());
        }
    }

    #[test]
    fn etkf_pool_variant_is_deterministic_and_improves_fit() {
        let d = driver(2);
        let truth = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (200.0, 200.0),
                radius: 25.0,
            }],
            0.0,
        );
        let psi_op = wildfire_obs::StridedPsi::new(truth.fire.grid(), 7, 1.0);
        let mut data = Vec::new();
        psi_op.measure_truth_into(&truth.fire, &mut data).unwrap();
        let mut pool = wildfire_obs::ObsSet::new();
        pool.push(&psi_op, &data).unwrap();

        let members0 = d.initial_ensemble(&setup(6));
        let before: f64 = members0
            .iter()
            .map(|m| m.fire.psi.rmse(&truth.fire.psi).unwrap())
            .sum::<f64>()
            / 6.0;
        let run = |mut members: Vec<CoupledState>| {
            let mut ws = EnsembleWorkspace::new();
            d.analyze_obs_etkf_ws(&mut members, &pool, 1.0, &mut ws)
                .unwrap();
            members
        };
        let a = run(members0.clone());
        let b = run(members0);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.fire.psi, y.fire.psi, "ETKF must be deterministic");
        }
        let after: f64 = a
            .iter()
            .map(|m| m.fire.psi.rmse(&truth.fire.psi).unwrap())
            .sum::<f64>()
            / 6.0;
        assert!(after < before, "ψ RMSE must drop: {before} → {after}");
    }

    #[test]
    fn dense_psi_pool_morphing_matches_truth_field_morphing_bitwise() {
        // A stride-1 gridded ψ stream carries the same information as the
        // truth field the legacy morphing entry point consumes; with only
        // field 0 observed the two paths must coincide bit for bit.
        let d = driver(2);
        let truth = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (230.0, 230.0),
                radius: 25.0,
            }],
            0.0,
        );
        let cfg = MorphingConfig {
            registration: RegistrationConfig {
                max_shift: 120.0,
                shift_samples: 9,
                levels: vec![3],
                iterations: 15,
                ..Default::default()
            },
            sigma_amplitude: 2.0,
            sigma_displacement: 4.0,
            observed_fields: vec![0],
            ..Default::default()
        };
        let mut legacy = d.initial_ensemble(&setup(5));
        let mut pooled = legacy.clone();

        let mut rng_a = GaussianSampler::new(13);
        let mut ws_a = EnsembleWorkspace::new();
        d.analyze_morphing_ws(&mut legacy, &truth.fire, &cfg, &mut rng_a, &mut ws_a)
            .unwrap();

        let op = wildfire_obs::StridedPsi::new(truth.fire.grid(), 1, 1.0);
        let mut data = Vec::new();
        op.measure_truth_into(&truth.fire, &mut data).unwrap();
        let mut pool = wildfire_obs::ObsSet::new();
        pool.push(&op, &data).unwrap();
        let mut rng_b = GaussianSampler::new(13);
        let mut ws_b = EnsembleWorkspace::new();
        d.analyze_obs_morphing_ws(&mut pooled, &pool, &cfg, &mut rng_b, &mut ws_b)
            .unwrap();

        for (a, b) in legacy.iter().zip(pooled.iter()) {
            assert_eq!(a.fire.psi, b.fire.psi);
            assert_eq!(a.fire.tig, b.fire.tig);
        }
    }

    #[test]
    fn morphing_pool_without_gridded_stream_rejected() {
        let d = driver(1);
        let mut members = d.initial_ensemble(&setup(4));
        let st_op = wildfire_obs::StationTemperatures::new(
            vec![wildfire_obs::WeatherStation::new("S", 200.0, 200.0)],
            300.0,
            1.0,
        );
        let data = vec![300.0];
        let mut pool = wildfire_obs::ObsSet::new();
        pool.push(&st_op, &data).unwrap();
        let mut rng = GaussianSampler::new(1);
        let mut ws = EnsembleWorkspace::new();
        let err = d.analyze_obs_morphing_ws(
            &mut members,
            &pool,
            &MorphingConfig::default(),
            &mut rng,
            &mut ws,
        );
        assert!(matches!(err, Err(EnsembleError::Config(_))));
    }

    #[test]
    fn parallel_pack_bitwise_matches_serial_across_thread_counts() {
        // The member-parallel H(X) packing must reproduce the serial
        // ObsSet::pack_into bit for bit for every worker count, scratch
        // reuse and chunking invisible in the packed (y, H(X), R).
        let d = driver(1);
        let members = d.initial_ensemble(&setup(7));
        let truth = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (200.0, 200.0),
                radius: 25.0,
            }],
            0.0,
        );
        let psi_op = wildfire_obs::StridedPsi::new(truth.fire.grid(), 5, 1.0);
        let mut psi_data = Vec::new();
        psi_op
            .measure_truth_into(&truth.fire, &mut psi_data)
            .unwrap();
        let st_op = wildfire_obs::StationTemperatures::new(
            vec![
                wildfire_obs::WeatherStation::new("S0", 120.0, 120.0),
                wildfire_obs::WeatherStation::new("S1", 240.0, 240.0),
            ],
            300.0,
            1.0,
        );
        let st_data = vec![301.0, 299.0];
        let mut pool = wildfire_obs::ObsSet::new();
        pool.push(&psi_op, &psi_data).unwrap();
        pool.push(&st_op, &st_data).unwrap();

        let mut serial = wildfire_obs::ObsWorkspace::new();
        pool.pack_into(&members, &mut serial).unwrap();
        let serial_bits: Vec<u64> = serial.hx.as_slice().iter().map(|v| v.to_bits()).collect();
        for threads in [1usize, 2, 3, 8] {
            let dp = driver(threads);
            let mut ws = EnsembleWorkspace::new();
            dp.pack_pool_ws(&members, &pool, &mut ws).unwrap();
            let bits: Vec<u64> = ws.obs.hx.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                serial_bits, bits,
                "H(X) must match serial at {threads} threads"
            );
            assert_eq!(
                serial.data, ws.obs.data,
                "y must match at {threads} threads"
            );
            assert_eq!(serial.var, ws.obs.var, "R must match at {threads} threads");
        }
    }

    #[test]
    fn source_driven_cycle_matches_eager_walk_bitwise() {
        // The acceptance pin: assimilating through a TimelineSource must
        // reproduce the eager expand-then-walk loop bit for bit — same
        // analyses, same order, same members.
        use wildfire_obs::{ObsInbox, ObsStreamKind, ObsStreamSpec, ObsTimeline, TimelineSource};
        let d = driver(2);
        let streams = vec![
            ObsStreamSpec::new(
                ObsStreamKind::StridedPsi {
                    stride: 5,
                    sigma: 1.0,
                },
                1.0,
                1.0,
            ),
            ObsStreamSpec::new(
                ObsStreamKind::Stations {
                    locations: vec![(150.0, 150.0), (240.0, 240.0)],
                    theta0: 300.0,
                    sigma: 1.0,
                },
                1.5,
                1.5,
            ),
        ];
        let t_end = 3.0;
        let dt = 0.5;
        let timeline = ObsTimeline::from_streams(&streams, t_end);
        assert!(timeline.len() >= 4, "the schedule must mix both streams");
        let operators: Vec<Box<dyn ObservationOperator>> =
            streams.iter().map(|s| s.build_operator(&d.model)).collect();
        let truth0 = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (210.0, 210.0),
                radius: 25.0,
            }],
            0.0,
        );
        let members0 = d.initial_ensemble(&setup(5));
        let filter = ObsFilter::Standard { inflation: 1.01 };

        // Eager: expand, walk analysis times, synthesize + cycle.
        let mut eager = members0.clone();
        let mut truth = truth0.clone();
        let mut rng = GaussianSampler::new(17);
        let mut rng_data = GaussianSampler::new(71);
        let mut ws = EnsembleWorkspace::new();
        let mut blocks = Vec::new();
        let mut eager_analyses = 0usize;
        for t in timeline.analysis_times() {
            d.model.run(&mut truth, t, dt, |_, _| {}).unwrap();
            let pool = timeline
                .synthesize_due_pool(&operators, t, &truth, &mut rng_data, &mut blocks)
                .unwrap();
            d.cycle_obs_ws(&mut eager, &pool, filter, t, dt, &mut rng, &mut ws)
                .unwrap();
            eager_analyses += 1;
        }

        // Source-driven: the same schedule through a TimelineSource whose
        // provider replays the identical-twin synthesis.
        let mut streamed = members0.clone();
        let mut truth2 = truth0.clone();
        let mut rng2 = GaussianSampler::new(17);
        let mut rng_data2 = GaussianSampler::new(71);
        let mut ws2 = EnsembleWorkspace::new();
        let model = d.model.clone();
        let ops_for_src: Vec<Box<dyn ObservationOperator>> =
            streams.iter().map(|s| s.build_operator(&d.model)).collect();
        let mut source = TimelineSource::new(timeline.clone(), move |t, s, data| {
            model
                .run(&mut truth2, t, dt, |_, _| {})
                .map_err(|_| wildfire_obs::ObsError::Operator("truth advance failed"))?;
            wildfire_obs::synthesize_measurements(
                ops_for_src[s].as_ref(),
                &truth2,
                &mut rng_data2,
                data,
            )
        });
        let mut inbox = ObsInbox::new();
        let report = d
            .cycle_source_ws(
                &mut streamed,
                &mut source,
                &mut inbox,
                &operators,
                filter,
                t_end,
                dt,
                &mut rng2,
                &mut ws2,
            )
            .unwrap();
        assert_eq!(report.analyses, eager_analyses);
        assert_eq!(report.reports_assimilated, timeline.len());
        assert!(report.last.is_some());

        for (a, b) in eager.iter().zip(streamed.iter()) {
            assert_eq!(a.fire.psi, b.fire.psi, "ψ must match bitwise");
            assert_eq!(a.fire.tig, b.fire.tig, "t_i must match bitwise");
            assert_eq!(a.atmos.theta, b.atmos.theta, "θ must match bitwise");
        }
    }

    #[test]
    fn source_cycle_forecasts_to_target_when_source_runs_dry() {
        use wildfire_obs::{ChannelSource, ObsInbox};
        let d = driver(1);
        let mut members = d.initial_ensemble(&setup(4));
        let (tx, mut source) = ChannelSource::channel();
        drop(tx); // No reports will ever arrive.
        let mut inbox = ObsInbox::new();
        let operators: Vec<Box<dyn ObservationOperator>> = Vec::new();
        let mut rng = GaussianSampler::new(1);
        let mut ws = EnsembleWorkspace::new();
        let report = d
            .cycle_source_ws(
                &mut members,
                &mut source,
                &mut inbox,
                &operators,
                ObsFilter::Standard { inflation: 1.0 },
                1.0,
                0.5,
                &mut rng,
                &mut ws,
            )
            .unwrap();
        assert_eq!(report.analyses, 0);
        for m in &members {
            assert!((m.time() - 1.0).abs() < 1e-9, "members must reach t_target");
        }
    }

    #[test]
    fn sharded_store_forecast_matches_forecast_ws() {
        // Two shard "processes", each with its own workspace and blank
        // restore targets, meeting only at the shared store: the union of
        // their forecasts must reproduce the single-process forecast bit
        // for bit — the in-process half of the sharded-exchange contract.
        let d = driver(2);
        let mut direct = d.initial_ensemble(&setup(5));
        let mut ws = EnsembleWorkspace::new();
        d.forecast_ws(&mut direct, 2.0, 0.5, &mut ws).unwrap();

        let store = MemStore::new();
        let members0 = d.initial_ensemble(&setup(5));
        let mut snap = Snapshot::new();
        for (i, m) in members0.iter().enumerate() {
            d.model.snapshot_into(m, None, &mut snap);
            store.save(i, &snap).unwrap();
        }
        let blank = || d.model.ignite(&[], 0.0);
        let mut shard_a: Vec<CoupledState> = (0..2).map(|_| blank()).collect();
        let mut shard_b: Vec<CoupledState> = (0..3).map(|_| blank()).collect();
        let mut ws_a = EnsembleWorkspace::new();
        let mut ws_b = EnsembleWorkspace::new();
        d.forecast_shard_via_store(&mut shard_a, 0, &store, 2.0, 0.5, &mut ws_a)
            .unwrap();
        d.forecast_shard_via_store(&mut shard_b, 2, &store, 2.0, 0.5, &mut ws_b)
            .unwrap();

        for (i, m) in shard_a.iter().chain(shard_b.iter()).enumerate() {
            assert_eq!(m.fire.psi, direct[i].fire.psi, "member {i}");
            assert_eq!(m.fire.tig, direct[i].fire.tig, "member {i}");
            assert_eq!(m.atmos, direct[i].atmos, "member {i}");
        }
        // The store now holds the advanced states for the analysis side.
        let mut got = blank();
        for (i, m) in direct.iter().enumerate() {
            store.load_into(i, &mut snap).unwrap();
            d.model.restore_from(&mut got, None, &snap).unwrap();
            assert_eq!(got.fire.psi, m.fire.psi, "stored member {i}");
        }
    }

    #[test]
    fn ensemble_checkpoint_resume_is_bitwise() {
        // Cycle → checkpoint (members + RNG, through the byte round-trip)
        // → continue, against restore-into-cold-everything → continue.
        let d = driver(2);
        let truth = d.model.ignite(
            &[IgnitionShape::Circle {
                center: (200.0, 200.0),
                radius: 25.0,
            }],
            0.0,
        );
        let op = wildfire_obs::StridedPsi::new(truth.fire.grid(), 5, 1.0);
        let mut data = Vec::new();
        op.measure_truth_into(&truth.fire, &mut data).unwrap();
        let mut pool = wildfire_obs::ObsSet::new();
        pool.push(&op, &data).unwrap();
        let filter = ObsFilter::Standard { inflation: 1.01 };

        let mut members = d.initial_ensemble(&setup(5));
        let mut rng = GaussianSampler::new(21);
        let mut ws = EnsembleWorkspace::new();
        d.cycle_obs_ws(&mut members, &pool, filter, 1.0, 0.5, &mut rng, &mut ws)
            .unwrap();

        let mut snap = Snapshot::new();
        d.snapshot_into(&members, &rng, &mut snap);
        let snap = Snapshot::from_bytes(&snap.to_bytes()).unwrap();

        d.cycle_obs_ws(&mut members, &pool, filter, 2.0, 0.5, &mut rng, &mut ws)
            .unwrap();

        let mut resumed: Vec<CoupledState> = (0..5).map(|_| d.model.ignite(&[], 0.0)).collect();
        let mut rng2 = GaussianSampler::new(0);
        d.restore_from(&mut resumed, &mut rng2, &snap).unwrap();
        let mut ws2 = EnsembleWorkspace::new();
        d.cycle_obs_ws(&mut resumed, &pool, filter, 2.0, 0.5, &mut rng2, &mut ws2)
            .unwrap();

        for (i, (a, b)) in members.iter().zip(resumed.iter()).enumerate() {
            assert_eq!(a.fire.psi, b.fire.psi, "member {i}");
            assert_eq!(a.fire.tig, b.fire.tig, "member {i}");
            assert_eq!(a.atmos, b.atmos, "member {i}");
        }
    }

    #[test]
    fn ensemble_restore_rejects_mismatches() {
        let d = driver(1);
        let members = d.initial_ensemble(&setup(3));
        let rng = GaussianSampler::new(1);
        let mut snap = Snapshot::new();
        d.snapshot_into(&members, &rng, &mut snap);

        // Wrong member count: rejected before any state is touched.
        let mut four: Vec<CoupledState> = (0..4).map(|_| d.model.ignite(&[], 0.0)).collect();
        let mut r = GaussianSampler::new(2);
        assert!(d.restore_from(&mut four, &mut r, &snap).is_err());

        // Wrong model configuration: fingerprint mismatch.
        let other = EnsembleDriver::new(
            CoupledModel::new(
                AtmosGrid {
                    nx: 7,
                    ny: 6,
                    nz: 4,
                    dx: 60.0,
                    dy: 60.0,
                    dz: 50.0,
                },
                AtmosParams::default(),
                FuelCategory::ShortGrass,
                4,
            )
            .unwrap(),
            1,
        );
        let mut three: Vec<CoupledState> = (0..3).map(|_| other.model.ignite(&[], 0.0)).collect();
        assert!(other.restore_from(&mut three, &mut r, &snap).is_err());
    }

    #[test]
    fn too_few_members_rejected() {
        let d = driver(1);
        let mut members = d.initial_ensemble(&setup(1));
        let truth = members[0].clone();
        let mut rng = GaussianSampler::new(1);
        assert!(d
            .analyze_standard(&mut members, &truth.fire, 5, 1.0, 1.0, &mut rng)
            .is_err());
    }
}
