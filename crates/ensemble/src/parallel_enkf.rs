//! Parallel ensemble linear algebra (the "Parallel linear algebra" box of
//! Fig. 2).
//!
//! The dominant dense product of the analysis step — the state update
//! `X ← X + A·W` with `A` of size (state × members) — is fanned out over
//! output columns. Each output column is an independent sequence of axpy
//! operations, so the parallel result is **bit-for-bit identical** to the
//! sequential one (no reduction-order differences), which keeps parallel
//! runs reproducible — a property the tests pin down.

use crate::pool::parallel_map;
use crate::Result;
use wildfire_enkf::EnkfError;
use wildfire_math::{Cholesky, GaussianSampler, Matrix};

/// Stochastic EnKF with column-parallel state update.
#[derive(Debug, Clone)]
pub struct ParallelEnkf {
    /// Worker threads for the dense products.
    pub threads: usize,
    /// Multiplicative forecast inflation (1 = none).
    pub inflation: f64,
}

impl ParallelEnkf {
    /// Creates the filter.
    pub fn new(threads: usize, inflation: f64) -> Self {
        ParallelEnkf { threads, inflation }
    }

    /// Column-parallel `A · W`.
    fn matmul_cols(&self, a: &Matrix, w: &Matrix) -> Matrix {
        let cols: Vec<Vec<f64>> = parallel_map(
            &(0..w.cols()).collect::<Vec<usize>>(),
            self.threads,
            |_, &j| a.matvec(w.col(j)).expect("dims validated by caller"),
        );
        let mut out = Matrix::zeros(a.rows(), w.cols());
        for (j, col) in cols.into_iter().enumerate() {
            out.set_col(j, &col);
        }
        out
    }

    /// Analysis step; same contract as
    /// [`wildfire_enkf::EnsembleKalmanFilter::analyze`].
    ///
    /// # Errors
    /// Dimension mismatches and linear-algebra failures.
    pub fn analyze(
        &self,
        ensemble: &mut Matrix,
        synthetic: &Matrix,
        data: &[f64],
        obs_var: &[f64],
        rng: &mut GaussianSampler,
    ) -> Result<()> {
        let (n, n_ens) = ensemble.dims();
        let (m, n_ens2) = synthetic.dims();
        if n_ens < 2 {
            return Err(EnkfError::EnsembleTooSmall.into());
        }
        if n_ens2 != n_ens || data.len() != m || obs_var.len() != m {
            return Err(EnkfError::DimensionMismatch {
                what: "parallel enkf inputs",
            }
            .into());
        }
        if m == 0 || n == 0 {
            return Ok(());
        }
        let (mut a, mean) = ensemble.anomalies();
        if self.inflation != 1.0 {
            a.scale_mut(self.inflation);
            for j in 0..n_ens {
                for i in 0..n {
                    ensemble[(i, j)] = mean[i] + a[(i, j)];
                }
            }
        }
        let (ha, _) = synthetic.anomalies();
        let scale = 1.0 / (n_ens as f64 - 1.0);
        let mut c = ha.matmul_tr(&ha).map_err(EnkfError::Math)?;
        c.scale_mut(scale);
        for i in 0..m {
            c[(i, i)] += obs_var[i];
        }
        let chol = Cholesky::new(&c).map_err(EnkfError::Math)?;
        let mut delta = Matrix::zeros(m, n_ens);
        for j in 0..n_ens {
            for i in 0..m {
                delta[(i, j)] = data[i] + rng.normal(0.0, obs_var[i].sqrt()) - synthetic[(i, j)];
            }
        }
        let z = chol.solve_matrix(&delta).map_err(EnkfError::Math)?;
        let mut w = ha.tr_matmul(&z).map_err(EnkfError::Math)?;
        w.scale_mut(scale);
        // The big product, parallel over output columns.
        let update = self.matmul_cols(&a, &w);
        ensemble.axpy_mut(1.0, &update).map_err(EnkfError::Math)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wildfire_enkf::{EnkfConfig, EnsembleKalmanFilter};

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let mut rng_init = GaussianSampler::new(42);
        let x0 = rng_init.normal_matrix(200, 24, 1.0);
        let y0 = x0.submatrix(0, 50, 0, 24);
        let data: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        let obs_var = vec![0.3; 50];

        // Sequential reference with the same RNG stream. The sequential
        // filter adds a tiny ridge; replicate by adding it to obs_var here.
        let ridge = 1e-10 * 0.3;
        let seq_var: Vec<f64> = obs_var.iter().map(|v| v + ridge).collect();
        let mut x_seq = x0.clone();
        let mut rng_seq = GaussianSampler::new(7);
        EnsembleKalmanFilter::new(EnkfConfig {
            inflation: 1.0,
            ridge: 0.0,
        })
        .analyze(&mut x_seq, &y0, &data, &seq_var, &mut rng_seq)
        .unwrap();

        for threads in [1, 2, 4] {
            let mut x_par = x0.clone();
            let mut rng_par = GaussianSampler::new(7);
            ParallelEnkf::new(threads, 1.0)
                .analyze(&mut x_par, &y0, &data, &seq_var, &mut rng_par)
                .unwrap();
            assert_eq!(
                x_par.as_slice(),
                x_seq.as_slice(),
                "threads={threads} must be bit-identical"
            );
        }
    }

    #[test]
    fn pulls_toward_data() {
        let mut rng = GaussianSampler::new(3);
        let mut x = rng.normal_matrix(10, 20, 1.0);
        let y = x.clone();
        let data = vec![6.0; 10];
        ParallelEnkf::new(4, 1.0)
            .analyze(&mut x, &y, &data, &[0.1; 10], &mut rng)
            .unwrap();
        let mean: f64 = x.col_mean().iter().sum::<f64>() / 10.0;
        assert!(mean > 3.0, "analysis mean {mean}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = GaussianSampler::new(1);
        let mut x = Matrix::zeros(5, 1);
        let y = Matrix::zeros(2, 1);
        assert!(ParallelEnkf::new(2, 1.0)
            .analyze(&mut x, &y, &[0.0; 2], &[1.0; 2], &mut rng)
            .is_err());
    }
}
