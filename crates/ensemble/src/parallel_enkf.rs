//! Parallel ensemble linear algebra (the "Parallel linear algebra" box of
//! Fig. 2).
//!
//! The dominant dense product of the analysis step — the state update
//! `X ← X + A·W` with `A` of size (state × members) — is fanned out over
//! output columns. Each output column is an independent sequence of axpy
//! operations, so the parallel result is **bit-for-bit identical** to the
//! sequential one (no reduction-order differences), which keeps parallel
//! runs reproducible — a property the tests pin down.

use crate::pool::parallel_for_each_column;
use crate::Result;
use wildfire_enkf::{AnalysisWorkspace, EnkfError};
use wildfire_math::{Cholesky, GaussianSampler, Matrix};

/// Stochastic EnKF with column-parallel state update.
#[derive(Debug, Clone)]
pub struct ParallelEnkf {
    /// Worker threads for the dense products.
    pub threads: usize,
    /// Multiplicative forecast inflation (1 = none).
    pub inflation: f64,
}

impl ParallelEnkf {
    /// Creates the filter.
    pub fn new(threads: usize, inflation: f64) -> Self {
        ParallelEnkf { threads, inflation }
    }

    /// Column-parallel `A · W` into a reusable output matrix. Each output
    /// column is an independent accumulation, so every thread count produces
    /// bit-identical results; the sequential path runs the same per-column
    /// kernel without spawning. The threaded path splits the column-major
    /// output buffer into one contiguous chunk of columns per worker —
    /// no per-call vector of column borrows is materialized.
    fn matmul_cols_into(&self, a: &Matrix, w: &Matrix, out: &mut Matrix) {
        out.resize_zeroed(a.rows(), w.cols());
        if self.threads <= 1 {
            a.matmul_into(w, out).expect("dims validated by caller");
            return;
        }
        let rows = a.rows();
        parallel_for_each_column(out.as_mut_slice(), rows, self.threads, |j, col| {
            a.matvec_into(w.col(j), col)
                .expect("dims validated by caller");
        });
    }

    /// Analysis step; same contract as
    /// [`wildfire_enkf::EnsembleKalmanFilter::analyze`].
    ///
    /// # Errors
    /// Dimension mismatches and linear-algebra failures.
    pub fn analyze(
        &self,
        ensemble: &mut Matrix,
        synthetic: &Matrix,
        data: &[f64],
        obs_var: &[f64],
        rng: &mut GaussianSampler,
    ) -> Result<()> {
        let mut ws = AnalysisWorkspace::new();
        self.analyze_ws(ensemble, synthetic, data, obs_var, rng, &mut ws)
    }

    /// Workspace-backed [`ParallelEnkf::analyze`]: the dense temporaries
    /// come from `ws` and are reused across analyses; the threaded column
    /// fan-out works on contiguous chunks of the output buffer, so the
    /// analysis itself performs no per-call allocation (with `threads > 1`
    /// only the scoped worker threads remain). Bit-identical to the
    /// allocating wrapper for every thread count.
    ///
    /// # Errors
    /// Dimension mismatches and linear-algebra failures.
    pub fn analyze_ws(
        &self,
        ensemble: &mut Matrix,
        synthetic: &Matrix,
        data: &[f64],
        obs_var: &[f64],
        rng: &mut GaussianSampler,
        ws: &mut AnalysisWorkspace,
    ) -> Result<()> {
        let (n, n_ens) = ensemble.dims();
        let (m, n_ens2) = synthetic.dims();
        if n_ens < 2 {
            return Err(EnkfError::EnsembleTooSmall.into());
        }
        if n_ens2 != n_ens || data.len() != m || obs_var.len() != m {
            return Err(EnkfError::DimensionMismatch {
                what: "parallel enkf inputs",
            }
            .into());
        }
        if m == 0 || n == 0 {
            return Ok(());
        }
        ensemble.anomalies_into(&mut ws.a, &mut ws.mean_x);
        let a = &mut ws.a;
        if self.inflation != 1.0 {
            a.scale_mut(self.inflation);
            for j in 0..n_ens {
                for i in 0..n {
                    ensemble[(i, j)] = ws.mean_x[i] + a[(i, j)];
                }
            }
        }
        synthetic.anomalies_into(&mut ws.ha, &mut ws.mean_y);
        let ha = &ws.ha;
        let scale = 1.0 / (n_ens as f64 - 1.0);
        let c = &mut ws.c;
        ha.matmul_tr_into(ha, c).map_err(EnkfError::Math)?;
        c.scale_mut(scale);
        for i in 0..m {
            c[(i, i)] += obs_var[i];
        }
        Cholesky::factor_into(c, &mut ws.l).map_err(EnkfError::Math)?;
        let delta = &mut ws.delta;
        delta.resize_zeroed(m, n_ens);
        for j in 0..n_ens {
            for i in 0..m {
                delta[(i, j)] = data[i] + rng.normal(0.0, obs_var[i].sqrt()) - synthetic[(i, j)];
            }
        }
        for j in 0..n_ens {
            Cholesky::solve_in_place_with(&ws.l, delta.col_mut(j));
        }
        let w = &mut ws.w;
        ha.tr_matmul_into(delta, w).map_err(EnkfError::Math)?;
        w.scale_mut(scale);
        // The big product, parallel over output columns.
        self.matmul_cols_into(&ws.a, w, &mut ws.update);
        ensemble
            .axpy_mut(1.0, &ws.update)
            .map_err(EnkfError::Math)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wildfire_enkf::{EnkfConfig, EnsembleKalmanFilter};

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let mut rng_init = GaussianSampler::new(42);
        let x0 = rng_init.normal_matrix(200, 24, 1.0);
        let y0 = x0.submatrix(0, 50, 0, 24);
        let data: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        let obs_var = vec![0.3; 50];

        // Sequential reference with the same RNG stream. The sequential
        // filter adds a tiny ridge; replicate by adding it to obs_var here.
        let ridge = 1e-10 * 0.3;
        let seq_var: Vec<f64> = obs_var.iter().map(|v| v + ridge).collect();
        let mut x_seq = x0.clone();
        let mut rng_seq = GaussianSampler::new(7);
        EnsembleKalmanFilter::new(EnkfConfig {
            inflation: 1.0,
            ridge: 0.0,
        })
        .analyze(&mut x_seq, &y0, &data, &seq_var, &mut rng_seq)
        .unwrap();

        for threads in [1, 2, 4] {
            let mut x_par = x0.clone();
            let mut rng_par = GaussianSampler::new(7);
            ParallelEnkf::new(threads, 1.0)
                .analyze(&mut x_par, &y0, &data, &seq_var, &mut rng_par)
                .unwrap();
            assert_eq!(
                x_par.as_slice(),
                x_seq.as_slice(),
                "threads={threads} must be bit-identical"
            );
        }
    }

    #[test]
    fn pulls_toward_data() {
        let mut rng = GaussianSampler::new(3);
        let mut x = rng.normal_matrix(10, 20, 1.0);
        let y = x.clone();
        let data = vec![6.0; 10];
        ParallelEnkf::new(4, 1.0)
            .analyze(&mut x, &y, &data, &[0.1; 10], &mut rng)
            .unwrap();
        let mean: f64 = x.col_mean().iter().sum::<f64>() / 10.0;
        assert!(mean > 3.0, "analysis mean {mean}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = GaussianSampler::new(1);
        let mut x = Matrix::zeros(5, 1);
        let y = Matrix::zeros(2, 1);
        assert!(ParallelEnkf::new(2, 1.0)
            .analyze(&mut x, &y, &[0.0; 2], &[1.0; 2], &mut rng)
            .is_err());
    }
}
