//! State stores: the Fig. 2 state exchange.
//!
//! Ensemble states flow between the forecast, observation, and analysis
//! phases through a [`StateStore`]. The disk backend reproduces the paper's
//! architecture literally ("the ensemble of model states is maintained in
//! disk files"); the memory backend provides the same interface without the
//! I/O for benchmarking the cost of the file-based exchange (experiment E2).

use crate::{EnsembleError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use wildfire_fire::FireState;
use wildfire_obs::statefile::{StateCodec, StateFile};

/// Abstract member-state exchange.
pub trait StateStore: Send + Sync {
    /// Persists a member's fire state.
    ///
    /// # Errors
    /// Backend failures.
    fn save(&self, member: usize, state: &FireState) -> Result<()>;

    /// Retrieves a member's fire state.
    ///
    /// # Errors
    /// Backend failures or missing member.
    fn load(&self, member: usize) -> Result<FireState>;

    /// Members currently stored.
    fn members(&self) -> Vec<usize>;
}

/// In-memory store (lock-protected map of serialized states — serialization
/// is kept so both backends move exactly the same bytes).
#[derive(Default)]
pub struct MemStore {
    files: Mutex<HashMap<usize, StateFile>>,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateStore for MemStore {
    fn save(&self, member: usize, state: &FireState) -> Result<()> {
        let mut file = StateFile::new();
        state.encode(&mut file);
        self.files.lock().insert(member, file);
        Ok(())
    }

    fn load(&self, member: usize) -> Result<FireState> {
        let files = self.files.lock();
        let file = files
            .get(&member)
            .ok_or(EnsembleError::Config("member not in store"))?;
        Ok(FireState::decode(file)?)
    }

    fn members(&self) -> Vec<usize> {
        let mut m: Vec<usize> = self.files.lock().keys().copied().collect();
        m.sort_unstable();
        m
    }
}

/// Disk store: one `member_NNN.wfst` per member in a directory, written
/// atomically (temp file + rename).
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Creates the directory if needed.
    ///
    /// # Errors
    /// I/O failures.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| EnsembleError::Store(e.into()))?;
        Ok(DiskStore { dir })
    }

    fn path(&self, member: usize) -> PathBuf {
        self.dir.join(format!("member_{member:04}.wfst"))
    }
}

impl StateStore for DiskStore {
    fn save(&self, member: usize, state: &FireState) -> Result<()> {
        let mut file = StateFile::new();
        state.encode(&mut file);
        file.write(&self.path(member)).map_err(EnsembleError::Store)
    }

    fn load(&self, member: usize) -> Result<FireState> {
        let file = StateFile::read(&self.path(member)).map_err(EnsembleError::Store)?;
        Ok(FireState::decode(&file)?)
    }

    fn members(&self) -> Vec<usize> {
        let mut out = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy();
                if let Some(num) = name
                    .strip_prefix("member_")
                    .and_then(|s| s.strip_suffix(".wfst"))
                {
                    if let Ok(id) = num.parse() {
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wildfire_fire::ignition::IgnitionShape;
    use wildfire_grid::Grid2;

    fn sample_state(seed: f64) -> FireState {
        let g = Grid2::new(15, 15, 2.0, 2.0).unwrap();
        FireState::ignite(
            g,
            &[IgnitionShape::Circle {
                center: (14.0 + seed, 14.0),
                radius: 6.0,
            }],
            seed,
        )
    }

    fn exercise(store: &dyn StateStore) {
        assert!(store.members().is_empty());
        let s0 = sample_state(0.0);
        let s1 = sample_state(2.0);
        store.save(0, &s0).unwrap();
        store.save(7, &s1).unwrap();
        assert_eq!(store.members(), vec![0, 7]);
        let r0 = store.load(0).unwrap();
        let r1 = store.load(7).unwrap();
        assert_eq!(r0.psi, s0.psi);
        assert_eq!(r1.tig, s1.tig);
        assert!(store.load(3).is_err());
        // Overwrite.
        store.save(0, &s1).unwrap();
        assert_eq!(store.load(0).unwrap().time, s1.time);
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise(&MemStore::new());
    }

    #[test]
    fn disk_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("wf_store_test_{}", std::process::id()));
        let store = DiskStore::new(&dir).unwrap();
        exercise(&store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_and_disk_agree_bitwise() {
        let dir = std::env::temp_dir().join(format!("wf_store_bits_{}", std::process::id()));
        let disk = DiskStore::new(&dir).unwrap();
        let mem = MemStore::new();
        let s = sample_state(1.0);
        disk.save(0, &s).unwrap();
        mem.save(0, &s).unwrap();
        let a = disk.load(0).unwrap();
        let b = mem.load(0).unwrap();
        assert_eq!(a.psi.as_slice(), b.psi.as_slice());
        assert_eq!(a.tig.as_slice(), b.tig.as_slice());
        std::fs::remove_dir_all(&dir).ok();
    }
}
