//! Snapshot stores: the Fig. 2 state exchange.
//!
//! Ensemble members flow between the forecast, observation, and analysis
//! phases — and between *worker processes* holding different shards of the
//! ensemble — through a [`SnapshotStore`] carrying versioned full-state
//! [`Snapshot`]s (ψ, ignition times, atmosphere, warm-start potential,
//! clocks). The disk backend reproduces the paper's architecture literally
//! ("the ensemble of model states is maintained in disk files") with
//! atomic temp-then-rename writes, so a reader never observes a torn
//! member file; the memory backend provides the same interface without the
//! I/O for benchmarking the cost of the file-based exchange (experiment
//! E2). Both backends move exactly the same serialized bytes.

use crate::{EnsembleError, Result};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use wildfire_obs::Snapshot;

/// Abstract member-snapshot exchange.
///
/// Implementations are shared across worker threads (`&self` methods,
/// `Send + Sync`); the loading side is workspace-shaped
/// ([`SnapshotStore::load_into`]) so steady-state exchange reuses the
/// caller's record buffers.
pub trait SnapshotStore: Send + Sync {
    /// Persists a member's full-state snapshot.
    ///
    /// # Errors
    /// Backend failures.
    fn save(&self, member: usize, snap: &Snapshot) -> Result<()>;

    /// Retrieves a member's snapshot into `snap`, reusing its buffers.
    ///
    /// # Errors
    /// Backend failures or missing member.
    fn load_into(&self, member: usize, snap: &mut Snapshot) -> Result<()>;

    /// Members currently stored, sorted.
    fn members(&self) -> Vec<usize>;
}

thread_local! {
    /// Per-thread byte scratch for the disk backend, so single-threaded
    /// steady-state exchange performs no heap allocation once warm.
    static IO_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// In-memory store (lock-protected map of serialized snapshots —
/// serialization is kept so both backends move exactly the same bytes).
#[derive(Default)]
pub struct MemStore {
    files: Mutex<HashMap<usize, Vec<u8>>>,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SnapshotStore for MemStore {
    fn save(&self, member: usize, snap: &Snapshot) -> Result<()> {
        let mut files = self.files.lock();
        // `serialize_into` clears and reuses an existing entry's buffer.
        snap.serialize_into(files.entry(member).or_default());
        Ok(())
    }

    fn load_into(&self, member: usize, snap: &mut Snapshot) -> Result<()> {
        let files = self.files.lock();
        let bytes = files
            .get(&member)
            .ok_or(EnsembleError::Config("member not in store"))?;
        Snapshot::from_bytes_into(bytes, snap).map_err(EnsembleError::Store)
    }

    fn members(&self) -> Vec<usize> {
        let mut m: Vec<usize> = self.files.lock().keys().copied().collect();
        m.sort_unstable();
        m
    }
}

/// Disk store: one `member_NNNN.wfst` per member in a directory, written
/// atomically (temp file + fsync + rename) so concurrent shard workers and
/// tailing readers never see a partial snapshot.
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Creates the directory if needed.
    ///
    /// # Errors
    /// I/O failures.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| EnsembleError::Store(e.into()))?;
        Ok(DiskStore { dir })
    }

    /// The directory member files live in.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path(&self, member: usize) -> PathBuf {
        self.dir.join(format!("member_{member:04}.wfst"))
    }
}

impl SnapshotStore for DiskStore {
    fn save(&self, member: usize, snap: &Snapshot) -> Result<()> {
        IO_BUF.with(|buf| {
            snap.write_buf(&self.path(member), &mut buf.borrow_mut())
                .map_err(EnsembleError::Store)
        })
    }

    fn load_into(&self, member: usize, snap: &mut Snapshot) -> Result<()> {
        IO_BUF.with(|buf| {
            Snapshot::read_into(&self.path(member), snap, &mut buf.borrow_mut())
                .map_err(EnsembleError::Store)
        })
    }

    fn members(&self) -> Vec<usize> {
        let mut out = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy();
                if let Some(num) = name
                    .strip_prefix("member_")
                    .and_then(|s| s.strip_suffix(".wfst"))
                {
                    if let Ok(id) = num.parse() {
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(seed: f64) -> Snapshot {
        let mut snap = Snapshot::new();
        snap.put_slice(
            "fire/psi",
            &(0..64).map(|i| seed + i as f64 * 0.5).collect::<Vec<_>>(),
        );
        snap.put_slice("fire/tig", &[f64::MAX, seed, f64::MAX, 2.0 * seed]);
        snap.put_scalar("fire/time", seed);
        snap.put_u64("ens/rng", 0xBAD0_CAFE_0000_0001 + seed.to_bits());
        snap
    }

    fn exercise(store: &dyn SnapshotStore) {
        assert!(store.members().is_empty());
        let s0 = sample_snapshot(0.0);
        let s1 = sample_snapshot(2.0);
        store.save(0, &s0).unwrap();
        store.save(7, &s1).unwrap();
        assert_eq!(store.members(), vec![0, 7]);
        let mut r = Snapshot::new();
        store.load_into(0, &mut r).unwrap();
        assert_eq!(r, s0);
        store.load_into(7, &mut r).unwrap();
        assert_eq!(r, s1);
        assert!(store.load_into(3, &mut r).is_err());
        // Overwrite; the reused target must drop the stale contents.
        store.save(0, &s1).unwrap();
        store.load_into(0, &mut r).unwrap();
        assert_eq!(r, s1);
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise(&MemStore::new());
    }

    #[test]
    fn disk_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("wf_store_test_{}", std::process::id()));
        let store = DiskStore::new(&dir).unwrap();
        exercise(&store);
        // Atomic protocol: no temp droppings left behind.
        assert!(std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .all(|e| e.file_name().to_string_lossy().ends_with(".wfst")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_and_disk_agree_bitwise() {
        let dir = std::env::temp_dir().join(format!("wf_store_bits_{}", std::process::id()));
        let disk = DiskStore::new(&dir).unwrap();
        let mem = MemStore::new();
        let s = sample_snapshot(1.0);
        disk.save(0, &s).unwrap();
        mem.save(0, &s).unwrap();
        // Same interface, same bytes: the disk file and the memory entry
        // must be identical, and both must parse back to the original.
        let on_disk = std::fs::read(disk.path(0)).unwrap();
        assert_eq!(&on_disk, mem.files.lock().get(&0).unwrap());
        let mut a = Snapshot::new();
        let mut b = Snapshot::new();
        disk.load_into(0, &mut a).unwrap();
        mem.load_into(0, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, s);
        std::fs::remove_dir_all(&dir).ok();
    }
}
