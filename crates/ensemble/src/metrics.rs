//! Ensemble verification metrics for the filter experiments (Fig. 4).

use wildfire_core::CoupledState;
use wildfire_fire::perimeter::{centroid_distance, symmetric_difference_area};
use wildfire_fire::FireState;

/// Summary of an ensemble's fit to a truth fire state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleMetrics {
    /// Mean distance between member burned-area centroids and the truth's
    /// centroid (m) — the position error that defeats the plain EnKF.
    pub mean_position_error: f64,
    /// Mean symmetric-difference area between members and truth (m²).
    pub mean_shape_error: f64,
    /// Std of the member centroid positions around their own mean (m) —
    /// the ensemble position spread.
    pub position_spread: f64,
    /// Fraction of members whose burning region is empty or fragmented
    /// into 3+ pieces when the truth has one — a "nonphysical state"
    /// indicator for the standard-EnKF failure mode.
    pub nonphysical_fraction: f64,
    /// Mean ratio of member burned area to truth burned area — detects the
    /// other standard-EnKF failure mode, additive updates that inflate the
    /// burning region instead of moving it.
    pub mean_area_ratio: f64,
}

/// Computes [`EnsembleMetrics`] for fire states against a truth state.
pub fn evaluate_fire_ensemble(members: &[FireState], truth: &FireState) -> EnsembleMetrics {
    evaluate_fire_refs(members.iter(), truth)
}

/// Convenience overload for coupled states (borrows the fire components —
/// no member state is cloned).
pub fn evaluate_coupled_ensemble(
    members: &[CoupledState],
    truth: &CoupledState,
) -> EnsembleMetrics {
    evaluate_fire_refs(members.iter().map(|m| &m.fire), &truth.fire)
}

fn evaluate_fire_refs<'a>(
    members: impl ExactSizeIterator<Item = &'a FireState>,
    truth: &FireState,
) -> EnsembleMetrics {
    let n = members.len().max(1) as f64;
    let mut pos_err = 0.0;
    let mut shape_err = 0.0;
    let mut centroids = Vec::new();
    let truth_components = wildfire_fire::perimeter::burning_components(&truth.psi);
    let truth_area = truth.burned_area().max(1e-9);
    let mut nonphysical = 0usize;
    let mut area_ratio = 0.0;
    for m in members {
        let d = centroid_distance(m, truth);
        pos_err += if d.is_finite() { d } else { 1e6 };
        shape_err += symmetric_difference_area(m, truth);
        area_ratio += m.burned_area() / truth_area;
        if let Some(c) = wildfire_fire::perimeter::burned_centroid(&m.psi) {
            centroids.push(c);
        }
        let comps = wildfire_fire::perimeter::burning_components(&m.psi);
        if comps == 0 || comps >= truth_components + 2 {
            nonphysical += 1;
        }
    }
    let position_spread = if centroids.len() >= 2 {
        let mx = centroids.iter().map(|c| c.0).sum::<f64>() / centroids.len() as f64;
        let my = centroids.iter().map(|c| c.1).sum::<f64>() / centroids.len() as f64;
        (centroids
            .iter()
            .map(|c| (c.0 - mx).powi(2) + (c.1 - my).powi(2))
            .sum::<f64>()
            / centroids.len() as f64)
            .sqrt()
    } else {
        0.0
    };
    EnsembleMetrics {
        mean_position_error: pos_err / n,
        mean_shape_error: shape_err / n,
        position_spread,
        nonphysical_fraction: nonphysical as f64 / n,
        mean_area_ratio: area_ratio / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wildfire_fire::ignition::IgnitionShape;
    use wildfire_grid::Grid2;

    fn fire_at(cx: f64) -> FireState {
        let g = Grid2::new(41, 41, 2.0, 2.0).unwrap();
        FireState::ignite(
            g,
            &[IgnitionShape::Circle {
                center: (cx, 40.0),
                radius: 8.0,
            }],
            0.0,
        )
    }

    #[test]
    fn perfect_ensemble_has_zero_errors() {
        let truth = fire_at(40.0);
        let members = vec![truth.clone(), truth.clone(), truth.clone()];
        let m = evaluate_fire_ensemble(&members, &truth);
        assert_eq!(m.mean_position_error, 0.0);
        assert_eq!(m.mean_shape_error, 0.0);
        assert_eq!(m.position_spread, 0.0);
        assert_eq!(m.nonphysical_fraction, 0.0);
        assert!((m.mean_area_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn displaced_ensemble_measures_offset() {
        let truth = fire_at(40.0);
        let members = vec![fire_at(20.0), fire_at(24.0)];
        let m = evaluate_fire_ensemble(&members, &truth);
        assert!(
            (m.mean_position_error - 18.0).abs() < 3.0,
            "position error {}",
            m.mean_position_error
        );
        assert!(m.mean_shape_error > 0.0);
        assert!(m.position_spread > 0.5);
    }

    #[test]
    fn empty_member_flagged_nonphysical() {
        let truth = fire_at(40.0);
        let g = truth.grid();
        let members = vec![FireState::unburned(g), fire_at(40.0)];
        let m = evaluate_fire_ensemble(&members, &truth);
        assert!((m.nonphysical_fraction - 0.5).abs() < 1e-12);
        assert!(m.mean_position_error > 1e5, "empty member dominates");
    }
}
