//! # wildfire-ensemble
//!
//! The parallel ensemble architecture of Fig. 2: "Ensemble members are
//! advanced in time and the observation function evaluated for each
//! ensemble member independently on a subset of processors. … The ensemble
//! of model states is maintained in disk files. … The model, the
//! observation function, and the EnKF are in separate executables."
//!
//! This crate maps that architecture onto a single node:
//!
//! * [`pool`] — crossbeam scoped worker threads standing in for the
//!   processor subsets; members are partitioned across workers for the
//!   forecast and observation phases;
//! * [`store`] — the state exchange: a [`store::SnapshotStore`] abstraction
//!   with an in-memory backend and a disk backend writing one versioned
//!   full-state [`wildfire_obs::Snapshot`] per member (atomic renames),
//!   byte-identical to what separate executables would exchange; shards of
//!   the ensemble can live in different worker processes that meet only at
//!   the store;
//! * [`parallel_enkf`] — the "parallel linear algebra" of the analysis
//!   step: the state-update product is fanned out over output columns,
//!   which keeps results bit-for-bit identical to the sequential filter;
//! * [`driver`] — assimilation cycles tying it together for both filters
//!   (standard EnKF on raw fields, morphing EnKF on extended states), with
//!   the identical-twin experiment setup of Fig. 4 (ensemble ignited at an
//!   intentionally displaced location).

pub mod driver;
pub mod metrics;
pub mod parallel_enkf;
pub mod pool;
pub mod store;

pub use driver::{
    CycleReport, EnsembleDriver, EnsembleSetup, EnsembleWorkspace, FilterKind, ObsCycleReport,
    ObsFilter, SourceCycleReport, StoreWorker,
};
pub use parallel_enkf::ParallelEnkf;
pub use store::{DiskStore, MemStore, SnapshotStore};

/// Errors from the ensemble layer.
#[derive(Debug)]
pub enum EnsembleError {
    /// Error from the coupled model.
    Model(wildfire_core::CoupledError),
    /// Error from the filter.
    Filter(wildfire_enkf::EnkfError),
    /// Error from the observation layer (operators, pools, state storage).
    Store(wildfire_obs::ObsError),
    /// Configuration problem.
    Config(&'static str),
}

impl std::fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnsembleError::Model(e) => write!(f, "model: {e}"),
            EnsembleError::Filter(e) => write!(f, "filter: {e}"),
            EnsembleError::Store(e) => write!(f, "observation layer: {e}"),
            EnsembleError::Config(msg) => write!(f, "config: {msg}"),
        }
    }
}

impl std::error::Error for EnsembleError {}

impl From<wildfire_core::CoupledError> for EnsembleError {
    fn from(e: wildfire_core::CoupledError) -> Self {
        EnsembleError::Model(e)
    }
}

impl From<wildfire_enkf::EnkfError> for EnsembleError {
    fn from(e: wildfire_enkf::EnkfError) -> Self {
        EnsembleError::Filter(e)
    }
}

impl From<wildfire_obs::ObsError> for EnsembleError {
    fn from(e: wildfire_obs::ObsError) -> Self {
        EnsembleError::Store(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, EnsembleError>;
