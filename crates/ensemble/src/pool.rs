//! Worker-pool primitives on crossbeam scoped threads.
//!
//! Members are partitioned into contiguous chunks, one chunk per worker —
//! the "subset of processors" assignment of Fig. 2. Scoped threads borrow
//! the member slice mutably but disjointly, so the compiler proves data-race
//! freedom (no locks in the hot path).

/// Runs `f(index, item)` over all items, partitioned across `threads`
/// workers. With `threads <= 1` the loop runs inline (no spawn overhead),
/// which also gives a deterministic sequential reference for testing.
pub fn parallel_for_each<T: Send, F>(items: &mut [T], threads: usize, f: F)
where
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (c, slice) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (k, item) in slice.iter_mut().enumerate() {
                    f(c * chunk + k, item);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Maps `f` over indexed inputs in parallel, preserving order of results.
pub fn parallel_map<T: Send + Sync, R: Send, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (c, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (k, slot) in slot_chunk.iter_mut().enumerate() {
                    let i = c * chunk + k;
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_touches_every_item_once() {
        let mut items: Vec<usize> = vec![0; 100];
        parallel_for_each(&mut items, 4, |i, item| *item = i * 2);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn for_each_sequential_matches_parallel() {
        let mut seq: Vec<f64> = (0..57).map(|i| i as f64).collect();
        let mut par = seq.clone();
        let f = |i: usize, x: &mut f64| *x = (*x * 1.5 + i as f64).sin();
        parallel_for_each(&mut seq, 1, f);
        parallel_for_each(&mut par, 7, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..43).collect();
        let out = parallel_map(&items, 5, |i, &x| i + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i);
        }
    }

    #[test]
    fn handles_empty_and_more_threads_than_items() {
        let mut empty: Vec<u8> = vec![];
        parallel_for_each(&mut empty, 8, |_, _| {});
        let out: Vec<u8> = parallel_map(&Vec::<u8>::new(), 8, |_, &x| x);
        assert!(out.is_empty());
        let mut two = vec![1u8, 2];
        let counter = AtomicUsize::new(0);
        parallel_for_each(&mut two, 16, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }
}
