//! Worker-pool primitives on crossbeam scoped threads.
//!
//! Members are partitioned into contiguous chunks, one chunk per worker —
//! the "subset of processors" assignment of Fig. 2. Scoped threads borrow
//! the member slice mutably but disjointly, so the compiler proves data-race
//! freedom (no locks in the hot path).

/// Runs `f(index, item)` over all items, partitioned across `threads`
/// workers. With `threads <= 1` the loop runs inline (no spawn overhead),
/// which also gives a deterministic sequential reference for testing.
pub fn parallel_for_each<T: Send, F>(items: &mut [T], threads: usize, f: F)
where
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (c, slice) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (k, item) in slice.iter_mut().enumerate() {
                    f(c * chunk + k, item);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Runs `f(index, item, workspace)` over all items with one dedicated
/// mutable workspace per worker — the allocation-free variant of
/// [`parallel_for_each`]. Items are partitioned into at most
/// `workspaces.len()` contiguous chunks, one chunk (and one workspace) per
/// worker; with a single workspace the loop runs inline. Because each
/// item's computation is independent of the partitioning, results are
/// bit-identical for every workspace count — only the scratch buffers are
/// worker-local.
///
/// # Panics
/// Panics if `workspaces` is empty while `items` is not.
pub fn parallel_for_each_ws<T: Send, W: Send, F>(items: &mut [T], workspaces: &mut [W], f: F)
where
    F: Fn(usize, &mut T, &mut W) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    assert!(
        !workspaces.is_empty(),
        "parallel_for_each_ws needs at least one workspace"
    );
    let threads = workspaces.len().min(n);
    if threads == 1 {
        let w = &mut workspaces[0];
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item, w);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for ((c, slice), w) in items
            .chunks_mut(chunk)
            .enumerate()
            .zip(workspaces.iter_mut())
        {
            let f = &f;
            scope.spawn(move |_| {
                for (k, item) in slice.iter_mut().enumerate() {
                    f(c * chunk + k, item, w);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Work-stealing variant of [`parallel_for_each_ws`]: instead of carving
/// the items into static contiguous chunks, every worker pulls the next
/// unclaimed item index from a shared atomic cursor until the queue drains.
/// Cheap or already-finished items therefore never pin a worker while
/// another worker grinds through an expensive one — the load balances
/// dynamically, which is what a batch of fires with different grid sizes
/// and step counts needs. Each item's computation is independent of which
/// worker claims it, so results are bit-identical to the sequential loop
/// for every workspace count; only the scratch buffers are worker-local.
/// With a single workspace the loop runs inline.
///
/// # Panics
/// Panics if `workspaces` is empty while `items` is not.
pub fn parallel_for_each_dynamic_ws<T: Send, W: Send, F>(
    items: &mut [T],
    workspaces: &mut [W],
    f: F,
) where
    F: Fn(usize, &mut T, &mut W) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    assert!(
        !workspaces.is_empty(),
        "parallel_for_each_dynamic_ws needs at least one workspace"
    );
    let threads = workspaces.len().min(n);
    if threads == 1 {
        let w = &mut workspaces[0];
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item, w);
        }
        return;
    }

    /// Raw base pointer of the item slice, made sendable so each scoped
    /// worker can materialize disjoint `&mut` borrows from claimed indices.
    struct SendPtr<T>(*mut T);
    unsafe impl<T> Send for SendPtr<T> {}
    impl<T> Clone for SendPtr<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for SendPtr<T> {}

    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let base = SendPtr(items.as_mut_ptr());
    crossbeam::thread::scope(|scope| {
        for w in workspaces.iter_mut().take(threads) {
            let f = &f;
            let cursor = &cursor;
            scope.spawn(move |_| {
                // Capture the whole `SendPtr` (edition-2021 closures would
                // otherwise capture the bare `*mut T` field, which is !Send).
                let base = base;
                loop {
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // SAFETY: `fetch_add` hands out each index in `0..n` to
                    // exactly one worker, so the `&mut` borrows formed here
                    // are disjoint, in-bounds, and outlived by the scope that
                    // holds the exclusive borrow of `items`.
                    let item = unsafe { &mut *base.0.add(i) };
                    f(i, item, w);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Runs `f(col_index, column)` over the contiguous length-`col_len` columns
/// of a column-major buffer, partitioned into one contiguous *chunk of
/// columns* per worker. Unlike fanning `parallel_for_each` over a
/// materialized `Vec<&mut [f64]>` of column borrows, this splits the flat
/// buffer directly — no per-call allocation. Each column's computation is
/// independent of the partitioning, so results are bit-identical for every
/// thread count.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `col_len`.
pub fn parallel_for_each_column<F>(data: &mut [f64], col_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert_eq!(
        data.len() % col_len,
        0,
        "buffer length must be a whole number of columns"
    );
    let n_cols = data.len() / col_len;
    let threads = threads.max(1).min(n_cols);
    if threads == 1 {
        for (j, col) in data.chunks_mut(col_len).enumerate() {
            f(j, col);
        }
        return;
    }
    let cols_per_chunk = n_cols.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (c, chunk) in data.chunks_mut(cols_per_chunk * col_len).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (k, col) in chunk.chunks_mut(col_len).enumerate() {
                    f(c * cols_per_chunk + k, col);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// [`parallel_for_each_column`] with one dedicated mutable workspace per
/// worker: the flat column-major buffer is split into one contiguous chunk
/// of columns per workspace, and `f(col_index, column, workspace)` runs on
/// every column. With a single workspace the loop runs inline. Each
/// column's computation is independent of the partitioning and scratch
/// reuse, so results are bit-identical for every workspace count — this is
/// the member-parallel observation-packing shape (one `H(X)` column per
/// member, one operator scratch per worker).
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `col_len`, or if
/// `workspaces` is empty while `data` is not.
pub fn parallel_for_each_column_ws<W: Send, F>(
    data: &mut [f64],
    col_len: usize,
    workspaces: &mut [W],
    f: F,
) where
    F: Fn(usize, &mut [f64], &mut W) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert_eq!(
        data.len() % col_len,
        0,
        "buffer length must be a whole number of columns"
    );
    assert!(
        !workspaces.is_empty(),
        "parallel_for_each_column_ws needs at least one workspace"
    );
    let n_cols = data.len() / col_len;
    let threads = workspaces.len().min(n_cols);
    if threads == 1 {
        let w = &mut workspaces[0];
        for (j, col) in data.chunks_mut(col_len).enumerate() {
            f(j, col, w);
        }
        return;
    }
    let cols_per_chunk = n_cols.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for ((c, chunk), w) in data
            .chunks_mut(cols_per_chunk * col_len)
            .enumerate()
            .zip(workspaces.iter_mut())
        {
            let f = &f;
            scope.spawn(move |_| {
                for (k, col) in chunk.chunks_mut(col_len).enumerate() {
                    f(c * cols_per_chunk + k, col, w);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Maps `f` over indexed inputs in parallel, preserving order of results.
pub fn parallel_map<T: Send + Sync, R: Send, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (c, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (k, slot) in slot_chunk.iter_mut().enumerate() {
                    let i = c * chunk + k;
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_touches_every_item_once() {
        let mut items: Vec<usize> = vec![0; 100];
        parallel_for_each(&mut items, 4, |i, item| *item = i * 2);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn for_each_sequential_matches_parallel() {
        let mut seq: Vec<f64> = (0..57).map(|i| i as f64).collect();
        let mut par = seq.clone();
        let f = |i: usize, x: &mut f64| *x = (*x * 1.5 + i as f64).sin();
        parallel_for_each(&mut seq, 1, f);
        parallel_for_each(&mut par, 7, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn for_each_ws_bitwise_identical_across_worker_counts() {
        // Each worker's scratch must not leak into results: outputs are
        // bit-identical no matter how many workspaces (= workers) serve the
        // slice, even though the scratch is reused within a worker.
        let init: Vec<f64> = (0..83).map(|i| (i as f64) * 0.61 - 20.0).collect();
        let run = |n_ws: usize| -> Vec<u64> {
            let mut items = init.clone();
            let mut wss: Vec<Vec<f64>> = vec![Vec::new(); n_ws];
            parallel_for_each_ws(&mut items, &mut wss, |i, x, scratch| {
                scratch.clear();
                scratch.resize(8, *x);
                let s: f64 = scratch.iter().sum();
                *x = (s * 0.125 + i as f64).sin();
            });
            items.iter().map(|v| v.to_bits()).collect()
        };
        let seq = run(1);
        for n_ws in [2, 3, 7, 100] {
            assert_eq!(seq, run(n_ws), "workspaces = {n_ws}");
        }
    }

    #[test]
    fn for_each_ws_handles_empty_items() {
        let mut empty: Vec<u8> = vec![];
        let mut wss: Vec<()> = vec![];
        parallel_for_each_ws(&mut empty, &mut wss, |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "at least one workspace")]
    fn for_each_ws_rejects_missing_workspaces() {
        let mut items = vec![1u8];
        let mut wss: Vec<()> = vec![];
        parallel_for_each_ws(&mut items, &mut wss, |_, _, _| {});
    }

    #[test]
    fn dynamic_ws_bitwise_identical_across_worker_counts() {
        // The claim order is nondeterministic, but each item's computation
        // depends only on its own index/value, so outputs must be
        // bit-identical for every workspace count.
        let init: Vec<f64> = (0..83).map(|i| (i as f64) * 0.61 - 20.0).collect();
        let run = |n_ws: usize| -> Vec<u64> {
            let mut items = init.clone();
            let mut wss: Vec<Vec<f64>> = vec![Vec::new(); n_ws];
            parallel_for_each_dynamic_ws(&mut items, &mut wss, |i, x, scratch| {
                scratch.clear();
                scratch.resize(8, *x);
                let s: f64 = scratch.iter().sum();
                *x = (s * 0.125 + i as f64).sin();
            });
            items.iter().map(|v| v.to_bits()).collect()
        };
        let seq = run(1);
        for n_ws in [2, 3, 7, 100] {
            assert_eq!(seq, run(n_ws), "workspaces = {n_ws}");
        }
    }

    #[test]
    fn dynamic_ws_skewed_costs_overlap() {
        // One slot blocks until every other slot has finished. Static
        // chunking would co-locate the blocker with undone slots on the
        // same worker and never complete; the dynamic cursor lets the
        // other worker drain the cheap slots while the blocker waits.
        let n = 16;
        let mut items: Vec<usize> = vec![0; n];
        let mut wss: Vec<()> = vec![(), ()];
        let done = AtomicUsize::new(0);
        let overlapped = AtomicUsize::new(0);
        parallel_for_each_dynamic_ws(&mut items, &mut wss, |i, item, _| {
            if i == 0 {
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                while done.load(Ordering::SeqCst) < n - 1 {
                    if std::time::Instant::now() > deadline {
                        return; // overlapped stays 0 -> assert below fails
                    }
                    std::thread::yield_now();
                }
                overlapped.store(1, Ordering::SeqCst);
            }
            *item = i + 1;
            done.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(
            overlapped.load(Ordering::SeqCst),
            1,
            "cheap slots did not overlap the expensive one"
        );
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i + 1, "slot {i} not visited exactly once");
        }
    }

    #[test]
    fn dynamic_ws_handles_empty_items() {
        let mut empty: Vec<u8> = vec![];
        let mut wss: Vec<()> = vec![];
        parallel_for_each_dynamic_ws(&mut empty, &mut wss, |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "at least one workspace")]
    fn dynamic_ws_rejects_missing_workspaces() {
        let mut items = vec![1u8];
        let mut wss: Vec<()> = vec![];
        parallel_for_each_dynamic_ws(&mut items, &mut wss, |_, _, _| {});
    }

    #[test]
    fn dynamic_ws_more_slots_than_workers_visits_each_once() {
        let mut items: Vec<usize> = vec![0; 37];
        let mut wss: Vec<()> = vec![(); 3];
        let visits = AtomicUsize::new(0);
        parallel_for_each_dynamic_ws(&mut items, &mut wss, |i, item, _| {
            *item += i;
            visits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(visits.load(Ordering::Relaxed), 37);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn column_split_bitwise_identical_across_thread_counts() {
        // The chunked column split must reproduce the sequential per-column
        // kernel bit-for-bit regardless of the worker count, including
        // counts that do not divide the column count.
        let col_len = 13;
        let n_cols = 29;
        let init: Vec<f64> = (0..col_len * n_cols)
            .map(|i| (i as f64) * 0.37 - 50.0)
            .collect();
        let run = |threads: usize| -> Vec<u64> {
            let mut data = init.clone();
            parallel_for_each_column(&mut data, col_len, threads, |j, col| {
                for (k, v) in col.iter_mut().enumerate() {
                    *v = (*v * 1.0001 + (j * col_len + k) as f64).sin();
                }
            });
            data.iter().map(|v| v.to_bits()).collect()
        };
        let seq = run(1);
        for threads in [2, 3, 5, 29, 64] {
            assert_eq!(seq, run(threads), "threads = {threads}");
        }
    }

    #[test]
    fn column_split_ws_bitwise_identical_across_workspace_counts() {
        // The workspace variant must reproduce the sequential per-column
        // kernel bit-for-bit for any workspace count, with worker-local
        // scratch reuse invisible in the results.
        let col_len = 11;
        let n_cols = 23;
        let init: Vec<f64> = (0..col_len * n_cols)
            .map(|i| (i as f64) * 0.53 - 30.0)
            .collect();
        let run = |n_ws: usize| -> Vec<u64> {
            let mut data = init.clone();
            let mut wss: Vec<Vec<f64>> = vec![Vec::new(); n_ws];
            parallel_for_each_column_ws(&mut data, col_len, &mut wss, |j, col, scratch| {
                scratch.clear();
                scratch.extend_from_slice(col);
                let s: f64 = scratch.iter().sum();
                for (k, v) in col.iter_mut().enumerate() {
                    *v = (*v + s * 1e-3 + (j + k) as f64).sin();
                }
            });
            data.iter().map(|v| v.to_bits()).collect()
        };
        let seq = run(1);
        for n_ws in [2, 3, 5, 23, 64] {
            assert_eq!(seq, run(n_ws), "workspaces = {n_ws}");
        }
    }

    #[test]
    fn column_split_ws_handles_empty_and_rejects_missing_workspaces() {
        let mut empty: Vec<f64> = vec![];
        let mut none: Vec<()> = vec![];
        parallel_for_each_column_ws(&mut empty, 4, &mut none, |_, _, _| {});
        let caught = std::panic::catch_unwind(|| {
            let mut data = vec![0.0; 8];
            let mut none: Vec<()> = vec![];
            parallel_for_each_column_ws(&mut data, 4, &mut none, |_, _, _| {});
        });
        assert!(caught.is_err(), "missing workspaces must be rejected");
    }

    #[test]
    fn column_split_handles_empty_and_rejects_ragged() {
        let mut empty: Vec<f64> = vec![];
        parallel_for_each_column(&mut empty, 4, 3, |_, _| {});
        let caught = std::panic::catch_unwind(|| {
            let mut ragged = vec![0.0; 7];
            parallel_for_each_column(&mut ragged, 4, 2, |_, _| {});
        });
        assert!(caught.is_err(), "ragged buffers must be rejected");
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..43).collect();
        let out = parallel_map(&items, 5, |i, &x| i + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i);
        }
    }

    #[test]
    fn handles_empty_and_more_threads_than_items() {
        let mut empty: Vec<u8> = vec![];
        parallel_for_each(&mut empty, 8, |_, _| {});
        let out: Vec<u8> = parallel_map(&Vec::<u8>::new(), 8, |_, &x| x);
        assert!(out.is_empty());
        let mut two = vec![1u8, 2];
        let counter = AtomicUsize::new(0);
        parallel_for_each(&mut two, 16, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn zero_threads_clamps_to_sequential() {
        // threads = 0 must behave exactly like the single-threaded path,
        // not spawn nothing or divide by zero.
        let mut via_zero: Vec<f64> = (0..23).map(|i| i as f64).collect();
        let mut via_one = via_zero.clone();
        let f = |i: usize, x: &mut f64| *x = (*x + i as f64).cos();
        parallel_for_each(&mut via_zero, 0, f);
        parallel_for_each(&mut via_one, 1, f);
        assert_eq!(via_zero, via_one);

        let items: Vec<usize> = (0..23).collect();
        let m0 = parallel_map(&items, 0, |i, &x| i * x);
        let m1 = parallel_map(&items, 1, |i, &x| i * x);
        assert_eq!(m0, m1);
    }

    #[test]
    fn map_sequential_matches_parallel_bitwise() {
        // Bit-for-bit determinism of parallel_map vs the sequential path:
        // floating-point outputs must be identical, not just close, because
        // each index's computation is independent of the partitioning.
        let items: Vec<f64> = (0..257).map(|i| (i as f64) * 0.731 - 40.0).collect();
        let f = |i: usize, x: &f64| (x * 1.000003 + i as f64).sin() * x.exp2();
        let seq = parallel_map(&items, 1, f);
        for threads in [2, 3, 7, 16, 300] {
            let par = parallel_map(&items, threads, f);
            let seq_bits: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
            let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "threads = {threads}");
        }
    }

    #[test]
    fn for_each_sequential_matches_parallel_bitwise_across_thread_counts() {
        let init: Vec<f64> = (0..101).map(|i| (i as f64) * 1.37 - 60.0).collect();
        let f = |i: usize, x: &mut f64| *x = (*x * 0.9999 + i as f64).tanh();
        let mut seq = init.clone();
        parallel_for_each(&mut seq, 1, f);
        for threads in [2, 5, 8, 64, 200] {
            let mut par = init.clone();
            parallel_for_each(&mut par, threads, f);
            let seq_bits: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
            let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "threads = {threads}");
        }
    }
}
