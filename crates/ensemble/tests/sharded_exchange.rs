//! The acceptance pin for the sharded ensemble exchange: two **separate
//! worker processes**, each forecasting half the ensemble through a shared
//! [`DiskStore`] directory, followed by a single-process analysis over the
//! gathered states, must reproduce the single-process
//! [`EnsembleDriver::cycle_obs_ws`] bit for bit.
//!
//! The worker processes are this same test binary re-invoked with `--exact
//! shard_worker_child` and the shard assignment passed through `WF_SHARD_*`
//! environment variables; without those variables the child test is a
//! no-op, so the normal suite run is unaffected.

use std::process::Command;
use wildfire_atmos::state::AtmosGrid;
use wildfire_atmos::AtmosParams;
use wildfire_core::{CoupledModel, CoupledState};
use wildfire_ensemble::{
    DiskStore, EnsembleDriver, EnsembleSetup, EnsembleWorkspace, ObsFilter, SnapshotStore,
};
use wildfire_fire::ignition::IgnitionShape;
use wildfire_fuel::FuelCategory;
use wildfire_math::GaussianSampler;
use wildfire_obs::{CoupledSnapshot, ObsSet, Snapshot, StridedPsi};

const N_MEMBERS: usize = 6;
const T_TARGET: f64 = 1.0;
const DT: f64 = 0.5;

/// The deterministic driver both processes rebuild independently — the
/// only shared state is the snapshot directory.
fn driver() -> EnsembleDriver {
    let model = CoupledModel::new(
        AtmosGrid {
            nx: 6,
            ny: 6,
            nz: 4,
            dx: 60.0,
            dy: 60.0,
            dz: 50.0,
        },
        AtmosParams::default(),
        FuelCategory::ShortGrass,
        4,
    )
    .unwrap();
    EnsembleDriver::new(model, 2)
}

fn initial_members(d: &EnsembleDriver) -> Vec<CoupledState> {
    d.initial_ensemble(&EnsembleSetup {
        n_members: N_MEMBERS,
        center: (180.0, 180.0),
        radius: 25.0,
        position_spread: 15.0,
        seed: 99,
    })
}

/// Worker-process entry point: forecasts the shard named by `WF_SHARD_*`
/// through the shared disk store. No-op without the variables.
#[test]
fn shard_worker_child() {
    let Ok(dir) = std::env::var("WF_SHARD_DIR") else {
        return;
    };
    let first: usize = std::env::var("WF_SHARD_FIRST").unwrap().parse().unwrap();
    let len: usize = std::env::var("WF_SHARD_LEN").unwrap().parse().unwrap();
    let d = driver();
    let store = DiskStore::new(&dir).unwrap();
    // Blank restore targets: the worker never sees the initial-ensemble
    // construction, only what arrives through the store.
    let mut shard: Vec<CoupledState> = (0..len).map(|_| d.model.ignite(&[], 0.0)).collect();
    let mut ws = EnsembleWorkspace::new();
    d.forecast_shard_via_store(&mut shard, first, &store, T_TARGET, DT, &mut ws)
        .unwrap();
}

#[test]
fn two_process_sharded_cycle_matches_single_process() {
    let d = driver();
    let members0 = initial_members(&d);

    // Identical-twin observation pool, built once in the parent.
    let truth = d.model.ignite(
        &[IgnitionShape::Circle {
            center: (200.0, 200.0),
            radius: 25.0,
        }],
        0.0,
    );
    let op = StridedPsi::new(truth.fire.grid(), 5, 1.0);
    let mut data = Vec::new();
    op.measure_truth_into(&truth.fire, &mut data).unwrap();
    let mut pool = ObsSet::new();
    pool.push(&op, &data).unwrap();
    let filter = ObsFilter::Standard { inflation: 1.01 };

    // Reference: the whole cycle in this process.
    let mut reference = members0.clone();
    let mut rng = GaussianSampler::new(21);
    let mut ws = EnsembleWorkspace::new();
    d.cycle_obs_ws(
        &mut reference,
        &pool,
        filter,
        T_TARGET,
        DT,
        &mut rng,
        &mut ws,
    )
    .unwrap();

    // Sharded: scatter the initial snapshots to disk …
    let dir = std::env::temp_dir().join(format!("wf_shard2p_{}", std::process::id()));
    let store = DiskStore::new(&dir).unwrap();
    let mut snap = Snapshot::new();
    for (i, m) in members0.iter().enumerate() {
        d.model.snapshot_into(m, None, &mut snap);
        store.save(i, &snap).unwrap();
    }

    // … forecast the two halves in two child processes …
    let exe = std::env::current_exe().unwrap();
    let spawn = |first: usize, len: usize| {
        Command::new(&exe)
            .args(["shard_worker_child", "--exact"])
            .env("WF_SHARD_DIR", &dir)
            .env("WF_SHARD_FIRST", first.to_string())
            .env("WF_SHARD_LEN", len.to_string())
            .spawn()
            .expect("spawn shard worker")
    };
    let half = N_MEMBERS / 2;
    let mut workers = [spawn(0, half), spawn(half, N_MEMBERS - half)];
    for w in &mut workers {
        let status = w.wait().expect("wait for shard worker");
        assert!(status.success(), "shard worker failed: {status}");
    }

    // … gather the forecast states and analyze in the parent. The members
    // are already at T_TARGET, so the cycle's forecast phase is a no-op
    // and the analysis runs exactly as in the single-process reference.
    let mut gathered: Vec<CoupledState> =
        (0..N_MEMBERS).map(|_| d.model.ignite(&[], 0.0)).collect();
    for (i, m) in gathered.iter_mut().enumerate() {
        store.load_into(i, &mut snap).unwrap();
        d.model.restore_from(m, None, &snap).unwrap();
    }
    let mut rng2 = GaussianSampler::new(21);
    let mut ws2 = EnsembleWorkspace::new();
    d.cycle_obs_ws(
        &mut gathered,
        &pool,
        filter,
        T_TARGET,
        DT,
        &mut rng2,
        &mut ws2,
    )
    .unwrap();

    for (i, (a, b)) in reference.iter().zip(gathered.iter()).enumerate() {
        assert_eq!(a.fire.psi, b.fire.psi, "member {i}: ψ must match bitwise");
        assert_eq!(a.fire.tig, b.fire.tig, "member {i}: t_i must match bitwise");
        assert_eq!(
            a.atmos, b.atmos,
            "member {i}: atmosphere must match bitwise"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
