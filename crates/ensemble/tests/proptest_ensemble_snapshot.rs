//! Property suite for whole-ensemble checkpoints: over random ensembles
//! (member count, perturbation seed/spread, forecast length, RNG draw
//! phase) the snapshot must round-trip through bytes bitwise — members,
//! clocks, *and* the sampler's stream position including the half-drawn
//! Marsaglia pair — and any truncation of the byte stream must be
//! rejected, never half-restored.

use proptest::prelude::*;
use wildfire_atmos::state::AtmosGrid;
use wildfire_atmos::AtmosParams;
use wildfire_core::CoupledState;
use wildfire_ensemble::{EnsembleDriver, EnsembleSetup, EnsembleWorkspace};
use wildfire_fuel::FuelCategory;
use wildfire_math::GaussianSampler;
use wildfire_obs::Snapshot;

#[derive(Debug, Clone)]
struct EnsSpec {
    n_members: usize,
    seed: u64,
    spread: f64,
    steps: usize,
    /// Normal draws consumed before the checkpoint — odd counts leave the
    /// sampler holding a spare variate, which must survive the trip.
    draws: usize,
}

fn ens_spec() -> impl Strategy<Value = EnsSpec> {
    (2usize..5, 0u64..1000, 5.0f64..20.0, 0usize..3, 0usize..5).prop_map(
        |(n_members, seed, spread, steps, draws)| EnsSpec {
            n_members,
            seed,
            spread,
            steps,
            draws,
        },
    )
}

fn driver() -> EnsembleDriver {
    let model = wildfire_core::CoupledModel::new(
        AtmosGrid {
            nx: 6,
            ny: 6,
            nz: 4,
            dx: 60.0,
            dy: 60.0,
            dz: 50.0,
        },
        AtmosParams::default(),
        FuelCategory::ShortGrass,
        4,
    )
    .unwrap();
    EnsembleDriver::new(model, 1)
}

fn random_ensemble(d: &EnsembleDriver, spec: &EnsSpec) -> Vec<CoupledState> {
    let mut members = d.initial_ensemble(&EnsembleSetup {
        n_members: spec.n_members,
        center: (180.0, 180.0),
        radius: 25.0,
        position_spread: spec.spread,
        seed: spec.seed,
    });
    if spec.steps > 0 {
        let mut ws = EnsembleWorkspace::new();
        d.forecast_ws(&mut members, spec.steps as f64 * 0.5, 0.5, &mut ws)
            .unwrap();
    }
    members
}

proptest! {
    #[test]
    fn ensemble_snapshot_roundtrips_bitwise(spec in ens_spec()) {
        let d = driver();
        let members = random_ensemble(&d, &spec);
        let mut rng = GaussianSampler::new(spec.seed ^ 0xABCD);
        for _ in 0..spec.draws {
            rng.standard_normal();
        }

        let mut snap = Snapshot::new();
        d.snapshot_into(&members, &rng, &mut snap);
        let bytes = snap.to_bytes();
        // Parse into a warm, differently-shaped target: buffer reuse must
        // not leak the previous contents.
        let mut parsed = Snapshot::new();
        parsed.put_slice("ens/psi", &[9.0; 7]);
        parsed.put_slice("stale/record", &[1.0]);
        Snapshot::from_bytes_into(&bytes, &mut parsed).unwrap();
        prop_assert_eq!(&parsed, &snap);

        let mut restored: Vec<CoupledState> = (0..spec.n_members)
            .map(|_| d.model.ignite(&[], 0.0))
            .collect();
        let mut rng2 = GaussianSampler::new(0);
        d.restore_from(&mut restored, &mut rng2, &parsed).unwrap();

        for (a, b) in members.iter().zip(restored.iter()) {
            prop_assert_eq!(&a.fire.psi, &b.fire.psi);
            prop_assert_eq!(&a.fire.tig, &b.fire.tig);
            prop_assert_eq!(a.fire.time.to_bits(), b.fire.time.to_bits());
            prop_assert_eq!(&a.atmos, &b.atmos);
        }
        // The restored sampler must resume the identical stream, spare
        // variate included.
        for _ in 0..4 {
            prop_assert_eq!(
                rng.standard_normal().to_bits(),
                rng2.standard_normal().to_bits()
            );
        }
    }

    #[test]
    fn truncated_ensemble_snapshots_rejected(spec in ens_spec(), frac in 0.0f64..1.0) {
        let d = driver();
        let members = random_ensemble(&d, &spec);
        let rng = GaussianSampler::new(spec.seed);
        let mut snap = Snapshot::new();
        d.snapshot_into(&members, &rng, &mut snap);
        let bytes = snap.to_bytes();
        // Any strict prefix must fail to parse.
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(Snapshot::from_bytes(&bytes[..cut]).is_err());
        // And trailing junk must be rejected too.
        let mut long = bytes.clone();
        long.push(0);
        prop_assert!(Snapshot::from_bytes(&long).is_err());
    }
}
