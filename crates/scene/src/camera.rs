//! The airborne camera model.
//!
//! A nadir-looking pinhole camera at altitude `h` above the domain center —
//! the paper's reference geometry ("as it would be observed with RIT's WASP
//! airborne infrared camera system flying about 3000 m above ground"). Each
//! pixel maps to a ground footprint; rays run from the camera position to
//! the ground point.

/// Nadir pinhole camera over a rectangular ground footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Altitude above ground (m).
    pub altitude: f64,
    /// Ground footprint: lower-left corner (m, world coordinates).
    pub footprint_origin: (f64, f64),
    /// Ground footprint size (m).
    pub footprint_size: (f64, f64),
    /// Image resolution (pixels).
    pub pixels: (usize, usize),
}

impl Camera {
    /// Camera covering exactly the rectangle `[x0, x0+w] × [y0, y0+h]`.
    pub fn over_footprint(
        altitude: f64,
        origin: (f64, f64),
        size: (f64, f64),
        pixels: (usize, usize),
    ) -> Camera {
        Camera {
            altitude,
            footprint_origin: origin,
            footprint_size: size,
            pixels,
        }
    }

    /// World position of the camera (above the footprint center).
    pub fn position(&self) -> (f64, f64, f64) {
        (
            self.footprint_origin.0 + 0.5 * self.footprint_size.0,
            self.footprint_origin.1 + 0.5 * self.footprint_size.1,
            self.altitude,
        )
    }

    /// Ground-point world coordinates of pixel `(px, py)` (pixel centers).
    pub fn pixel_ground_point(&self, px: usize, py: usize) -> (f64, f64) {
        let fx = (px as f64 + 0.5) / self.pixels.0 as f64;
        let fy = (py as f64 + 0.5) / self.pixels.1 as f64;
        (
            self.footprint_origin.0 + fx * self.footprint_size.0,
            self.footprint_origin.1 + fy * self.footprint_size.1,
        )
    }

    /// Ground sample distance (m per pixel) along x and y.
    pub fn gsd(&self) -> (f64, f64) {
        (
            self.footprint_size.0 / self.pixels.0 as f64,
            self.footprint_size.1 / self.pixels.1 as f64,
        )
    }

    /// Unit direction from the camera to the ground point of a pixel.
    pub fn ray_direction(&self, px: usize, py: usize) -> (f64, f64, f64) {
        let (gx, gy) = self.pixel_ground_point(px, py);
        let (cx, cy, cz) = self.position();
        let dx = gx - cx;
        let dy = gy - cy;
        let dz = -cz;
        let n = (dx * dx + dy * dy + dz * dz).sqrt();
        (dx / n, dy / n, dz / n)
    }

    /// Path length (m) from the camera to the ground point of a pixel.
    pub fn path_length(&self, px: usize, py: usize) -> f64 {
        let (gx, gy) = self.pixel_ground_point(px, py);
        let (cx, cy, cz) = self.position();
        ((gx - cx).powi(2) + (gy - cy).powi(2) + cz * cz).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::over_footprint(3000.0, (100.0, 200.0), (400.0, 400.0), (128, 128))
    }

    #[test]
    fn position_over_center() {
        let c = cam();
        assert_eq!(c.position(), (300.0, 400.0, 3000.0));
    }

    #[test]
    fn pixel_corners_map_to_footprint() {
        let c = cam();
        let (x0, y0) = c.pixel_ground_point(0, 0);
        let (x1, y1) = c.pixel_ground_point(127, 127);
        assert!(x0 > 100.0 && x0 < 105.0);
        assert!(y0 > 200.0 && y0 < 205.0);
        assert!(x1 < 500.0 && x1 > 495.0);
        assert!(y1 < 600.0 && y1 > 595.0);
    }

    #[test]
    fn gsd_matches_footprint() {
        let c = cam();
        let (gx, gy) = c.gsd();
        assert!((gx - 3.125).abs() < 1e-12);
        assert!((gy - 3.125).abs() < 1e-12);
    }

    #[test]
    fn rays_point_downward_and_normalize() {
        let c = cam();
        for &(px, py) in &[(0usize, 0usize), (64, 64), (127, 0)] {
            let (dx, dy, dz) = c.ray_direction(px, py);
            assert!(dz < 0.0);
            let n = (dx * dx + dy * dy + dz * dz).sqrt();
            assert!((n - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nadir_path_is_altitude_oblique_longer() {
        let c = cam();
        let nadir = c.path_length(64, 64);
        let corner = c.path_length(0, 0);
        assert!((nadir - 3000.0).abs() < 3.0);
        assert!(corner > nadir);
    }
}
