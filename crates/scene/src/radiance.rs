//! Planck radiometry over the sensor band.
//!
//! The paper's camera (RIT's WASP system) images the mid-wave infrared,
//! 3–5 µm. Band radiances are integrals of the Planck spectral radiance;
//! Gauss–Legendre quadrature evaluates them to high accuracy with a handful
//! of nodes, and a bisection inverse recovers brightness temperature from a
//! measured band radiance.

use wildfire_math::quadrature::{integrate, FixedRule};

/// First radiation constant `2hc²` (W·m²).
pub const C1: f64 = 1.191042972e-16;
/// Second radiation constant `hc/k_B` (m·K).
pub const C2: f64 = 1.438776877e-2;
/// Stefan–Boltzmann constant (W·m⁻²·K⁻⁴).
pub const STEFAN_BOLTZMANN: f64 = 5.670374419e-8;

/// Planck spectral radiance `B(λ, T)` in W·m⁻²·sr⁻¹·m⁻¹ (per meter of
/// wavelength), with λ in meters and T in kelvin. Zero for non-positive
/// temperature or wavelength.
pub fn planck(lambda: f64, t: f64) -> f64 {
    if t <= 0.0 || lambda <= 0.0 {
        return 0.0;
    }
    let x = C2 / (lambda * t);
    // Guard against overflow for short wavelengths / low temperatures.
    if x > 700.0 {
        return 0.0;
    }
    C1 / (lambda.powi(5) * (x.exp() - 1.0))
}

/// Quadrature order of [`band_radiance`] (and of the rules accepted by
/// [`band_radiance_rule`]).
pub const BAND_QUADRATURE_ORDER: usize = 24;

/// Band radiance `∫ B(λ, T) dλ` over `[lo, hi]` (W·m⁻²·sr⁻¹).
///
/// A 24-node Gauss–Legendre rule resolves the smooth Planck curve over the
/// mid-wave band to ~machine precision. Builds the rule (two heap buffers +
/// a Newton solve) per call; per-pixel loops should hoist a [`band_rule`]
/// and use [`band_radiance_rule`], which is bitwise identical.
pub fn band_radiance(lo: f64, hi: f64, t: f64) -> f64 {
    if t <= 0.0 || hi <= lo {
        return 0.0;
    }
    integrate(|lam| planck(lam, t), lo, hi, BAND_QUADRATURE_ORDER)
}

/// The hoisted quadrature rule for band `[lo, hi]`, for
/// [`band_radiance_rule`].
pub fn band_rule(lo: f64, hi: f64) -> FixedRule {
    FixedRule::new(lo, hi, BAND_QUADRATURE_ORDER)
}

/// [`band_radiance`] with the quadrature rule hoisted out: bitwise equal to
/// `band_radiance(lo, hi, t)` when `rule = band_rule(lo, hi)`, with no heap
/// traffic per evaluation.
pub fn band_radiance_rule(rule: &FixedRule, t: f64) -> f64 {
    if t <= 0.0 || rule.half_width() <= 0.0 {
        return 0.0;
    }
    rule.integrate(|lam| planck(lam, t))
}

/// Inverse of [`band_radiance`] in temperature: the brightness temperature
/// whose blackbody band radiance equals `l`. Bisection on `[t_min, t_max]`;
/// clamps to the bracket ends when `l` is outside their radiance range.
pub fn brightness_temperature(lo: f64, hi: f64, l: f64, t_min: f64, t_max: f64) -> f64 {
    let r_min = band_radiance(lo, hi, t_min);
    let r_max = band_radiance(lo, hi, t_max);
    if l <= r_min {
        return t_min;
    }
    if l >= r_max {
        return t_max;
    }
    let mut a = t_min;
    let mut b = t_max;
    for _ in 0..100 {
        let mid = 0.5 * (a + b);
        if band_radiance(lo, hi, mid) < l {
            a = mid;
        } else {
            b = mid;
        }
        if b - a < 1e-6 {
            break;
        }
    }
    0.5 * (a + b)
}

/// Total hemispherical emissive power `σT⁴` (W/m²) — used for the fire
/// radiated energy (FRE) validation against Wooster et al. (2003).
pub fn total_emissive_power(t: f64) -> f64 {
    STEFAN_BOLTZMANN * t * t * t * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planck_peak_location_wien() {
        // Wien: λ_max ≈ 2898 µm·K / T. At T = 1000 K, λ_max ≈ 2.898 µm.
        let t = 1000.0;
        let lam_peak = 2.897771955e-3 / t;
        let at_peak = planck(lam_peak, t);
        assert!(at_peak > planck(lam_peak * 0.8, t));
        assert!(at_peak > planck(lam_peak * 1.2, t));
    }

    #[test]
    fn planck_integrates_to_stefan_boltzmann() {
        // π·∫B dλ over all wavelengths = σT⁴; integrate a wide band.
        let t = 800.0;
        let total: f64 = integrate(|lam| planck(lam, t), 1e-7, 2e-4, 200);
        let expected = total_emissive_power(t) / std::f64::consts::PI;
        assert!(
            (total - expected).abs() / expected < 1e-3,
            "{total} vs {expected}"
        );
    }

    #[test]
    fn band_radiance_monotone_in_temperature() {
        let mut prev = 0.0;
        for t in [300.0, 500.0, 700.0, 900.0, 1100.0] {
            let r = band_radiance(3e-6, 5e-6, t);
            assert!(r > prev, "T={t}");
            prev = r;
        }
    }

    #[test]
    fn midwave_contrast_is_enormous() {
        // The reason 3–5 µm imaging works: a 1075 K front outshines 300 K
        // ground by orders of magnitude in-band.
        let hot = band_radiance(3e-6, 5e-6, 1075.0);
        let cold = band_radiance(3e-6, 5e-6, 300.0);
        assert!(hot / cold > 1000.0, "contrast {}", hot / cold);
    }

    #[test]
    fn brightness_temperature_inverts_band_radiance() {
        for t in [320.0, 500.0, 750.0, 1000.0] {
            let l = band_radiance(3e-6, 5e-6, t);
            let tb = brightness_temperature(3e-6, 5e-6, l, 250.0, 1400.0);
            assert!((tb - t).abs() < 1e-3, "T={t} recovered {tb}");
        }
    }

    #[test]
    fn brightness_temperature_clamps() {
        assert_eq!(
            brightness_temperature(3e-6, 5e-6, 0.0, 250.0, 1400.0),
            250.0
        );
        assert_eq!(
            brightness_temperature(3e-6, 5e-6, 1e12, 250.0, 1400.0),
            1400.0
        );
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(planck(-1.0, 300.0), 0.0);
        assert_eq!(planck(4e-6, 0.0), 0.0);
        assert_eq!(band_radiance(5e-6, 3e-6, 300.0), 0.0);
    }
}
