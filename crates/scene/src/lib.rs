//! # wildfire-scene
//!
//! Synthetic infrared scene generation (§3.2 of the paper): renders the
//! mid-wave (3–5 µm) radiance image an airborne sensor at ~3000 m would
//! record over the simulated fire, so that synthetic images can be compared
//! with real thermal imagery inside the data assimilation loop.
//!
//! The paper uses the DIRSIG first-principles ray tracer for this purpose
//! and states the goal of "replacing the computationally intensive, but
//! accurate, ray tracing method with a simpler method of calculating the
//! fire radiance based upon the radiance estimations that are inherent in
//! the fire propagation model" — which is what this crate implements. The
//! three radiance components the paper enumerates are all present:
//!
//! 1. **hot ground** under and behind the front, with the paper's
//!    double-exponential cooling (time constants 75 s and 250 s, front peak
//!    1075 K);
//! 2. **direct flame radiation** from a voxelized 3-D flame whose height
//!    follows the heat release rate and which tilts with the wind;
//! 3. **flame radiance reflected from nearby ground**, the mid-wave effect
//!    that produces the "lighter gray fading away at the edges" of Fig. 3.
//!
//! Validation follows the paper: the fire radiative energy is computed and
//! checked against published biomass-burning radiative fractions
//! (Wooster et al. 2003).

pub mod camera;
pub mod flame;
pub mod ground;
pub mod image;
pub mod radiance;
pub mod render;

pub use camera::Camera;
pub use flame::FlameVolume;
pub use image::SceneImage;
pub use render::{render_scene, render_scene_into, RenderScratch, SceneConfig};

/// Errors from scene generation.
#[derive(Debug, Clone, PartialEq)]
pub enum SceneError {
    /// Image dimensions must be positive.
    EmptyImage,
    /// Grid mismatch between the fire state and mesh.
    GridMismatch(&'static str),
    /// I/O failure while writing an image file.
    Io(String),
}

impl std::fmt::Display for SceneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SceneError::EmptyImage => write!(f, "image dimensions must be positive"),
            SceneError::GridMismatch(what) => write!(f, "grid mismatch: {what}"),
            SceneError::Io(e) => write!(f, "image i/o: {e}"),
        }
    }
}

impl std::error::Error for SceneError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, SceneError>;
