//! Radiance images: storage, statistics, brightness temperature, PGM export.

use crate::radiance::brightness_temperature;
use crate::{Result, SceneError};
use std::io::Write;
use std::path::Path;

/// A rendered band-radiance image (W·m⁻²·sr⁻¹ per pixel).
#[derive(Debug, Clone, PartialEq)]
pub struct SceneImage {
    /// Pixels in x (columns).
    pub width: usize,
    /// Pixels in y (rows).
    pub height: usize,
    /// Row-major radiance values.
    pub data: Vec<f64>,
    /// Sensor band (m).
    pub band: (f64, f64),
}

/// An empty 0×0 image — a placeholder for workspace buffers that are
/// re-targeted with [`SceneImage::resize`] before first use (allocates
/// nothing until then).
impl Default for SceneImage {
    fn default() -> Self {
        SceneImage {
            width: 0,
            height: 0,
            data: Vec::new(),
            band: (0.0, 0.0),
        }
    }
}

impl SceneImage {
    /// Blank image.
    ///
    /// # Errors
    /// [`SceneError::EmptyImage`] for zero dimensions.
    pub fn new(width: usize, height: usize, band: (f64, f64)) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(SceneError::EmptyImage);
        }
        Ok(SceneImage {
            width,
            height,
            data: vec![0.0; width * height],
            band,
        })
    }

    /// Re-targets the image to `width × height` in `band` and zeroes every
    /// pixel, reusing the existing storage when the capacity suffices — the
    /// image analogue of `Field2::resize_zeroed`, for renderers that reuse
    /// one output buffer across frames.
    ///
    /// # Errors
    /// [`SceneError::EmptyImage`] for zero dimensions.
    pub fn resize(&mut self, width: usize, height: usize, band: (f64, f64)) -> Result<()> {
        if width == 0 || height == 0 {
            return Err(SceneError::EmptyImage);
        }
        self.width = width;
        self.height = height;
        self.band = band;
        self.data.clear();
        self.data.resize(width * height, 0.0);
        Ok(())
    }

    /// Pixel accessor.
    #[inline]
    pub fn get(&self, px: usize, py: usize) -> f64 {
        self.data[py * self.width + px]
    }

    /// Pixel mutator.
    #[inline]
    pub fn set(&mut self, px: usize, py: usize, v: f64) {
        self.data[py * self.width + px] = v;
    }

    /// Minimum and maximum radiance.
    pub fn min_max(&self) -> (f64, f64) {
        self.data
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            })
    }

    /// Mean radiance.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Converts a pixel's radiance to brightness temperature (K).
    pub fn brightness_temperature_at(&self, px: usize, py: usize) -> f64 {
        brightness_temperature(self.band.0, self.band.1, self.get(px, py), 200.0, 2000.0)
    }

    /// Converts the whole image to brightness temperatures (K).
    pub fn to_brightness_temperature(&self) -> Vec<f64> {
        self.data
            .iter()
            .map(|&l| brightness_temperature(self.band.0, self.band.1, l, 200.0, 2000.0))
            .collect()
    }

    /// Block-averages the image by an integer factor (sensor binning /
    /// resolution degradation for assimilation).
    ///
    /// # Errors
    /// [`SceneError::EmptyImage`] when the factor does not divide the size.
    pub fn downsample(&self, factor: usize) -> Result<SceneImage> {
        if factor == 0 || !self.width.is_multiple_of(factor) || !self.height.is_multiple_of(factor)
        {
            return Err(SceneError::EmptyImage);
        }
        let w = self.width / factor;
        let h = self.height / factor;
        let mut out = SceneImage::new(w, h, self.band)?;
        for py in 0..h {
            for px in 0..w {
                let mut s = 0.0;
                for dy in 0..factor {
                    for dx in 0..factor {
                        s += self.get(px * factor + dx, py * factor + dy);
                    }
                }
                out.set(px, py, s / (factor * factor) as f64);
            }
        }
        Ok(out)
    }

    /// Writes the image as an 8-bit binary PGM, log-scaled between the
    /// image's own min/max radiance (the log scale preserves the visual
    /// structure of the enormous fire/background contrast).
    ///
    /// # Errors
    /// I/O failures.
    pub fn write_pgm(&self, path: &Path) -> Result<()> {
        let (lo, hi) = self.min_max();
        let lo = lo.max(1e-12);
        let hi = hi.max(lo * (1.0 + 1e-9));
        let log_lo = lo.ln();
        let log_hi = hi.ln();
        let mut bytes = Vec::with_capacity(self.data.len());
        for &v in &self.data {
            let t = ((v.max(lo).ln() - log_lo) / (log_hi - log_lo)).clamp(0.0, 1.0);
            bytes.push((t * 255.0).round() as u8);
        }
        let mut f = std::fs::File::create(path).map_err(|e| SceneError::Io(e.to_string()))?;
        write!(f, "P5\n{} {}\n255\n", self.width, self.height)
            .map_err(|e| SceneError::Io(e.to_string()))?;
        f.write_all(&bytes)
            .map_err(|e| SceneError::Io(e.to_string()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radiance::band_radiance;

    #[test]
    fn construction_and_accessors() {
        let mut img = SceneImage::new(4, 3, (3e-6, 5e-6)).unwrap();
        img.set(2, 1, 7.5);
        assert_eq!(img.get(2, 1), 7.5);
        assert_eq!(img.get(0, 0), 0.0);
        assert!(SceneImage::new(0, 3, (3e-6, 5e-6)).is_err());
    }

    #[test]
    fn brightness_temperature_roundtrip_through_image() {
        let mut img = SceneImage::new(2, 2, (3e-6, 5e-6)).unwrap();
        img.set(0, 0, band_radiance(3e-6, 5e-6, 400.0));
        let t = img.brightness_temperature_at(0, 0);
        assert!((t - 400.0).abs() < 0.01, "recovered {t}");
    }

    #[test]
    fn downsample_averages_blocks() {
        let mut img = SceneImage::new(4, 4, (3e-6, 5e-6)).unwrap();
        for py in 0..4 {
            for px in 0..4 {
                img.set(px, py, (px / 2 + 2 * (py / 2)) as f64);
            }
        }
        let small = img.downsample(2).unwrap();
        assert_eq!(small.width, 2);
        assert_eq!(small.get(0, 0), 0.0);
        assert_eq!(small.get(1, 0), 1.0);
        assert_eq!(small.get(0, 1), 2.0);
        assert_eq!(small.get(1, 1), 3.0);
        assert!(img.downsample(3).is_err());
    }

    #[test]
    fn pgm_writes_valid_header() {
        let mut img = SceneImage::new(8, 6, (3e-6, 5e-6)).unwrap();
        for (i, v) in img.data.iter_mut().enumerate() {
            *v = (i + 1) as f64;
        }
        let dir = std::env::temp_dir().join("wildfire_scene_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.pgm");
        img.write_pgm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n8 6\n255\n"));
        assert_eq!(bytes.len(), b"P5\n8 6\n255\n".len() + 48);
        std::fs::remove_file(&path).ok();
    }
}
