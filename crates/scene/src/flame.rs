//! Voxelized 3-D flame structure (§3.2).
//!
//! "The 3D flame structure is estimated by using the heat release rate and
//! experimental estimates of flame width and length and the flame is tilted
//! based on wind speed. This 3D structure is represented by a 3D grid of
//! voxels."
//!
//! Flame length follows Byram's classic correlation
//! `L = 0.0775 · I^0.46` (L in m, I = fireline intensity in kW/m), the
//! standard "experimental estimate" for surface fires; the tilt angle comes
//! from the wind-speed/buoyancy ratio.

use wildfire_fire::heat::{heat_fluxes_into, HeatFluxFields};
use wildfire_fire::{FireMesh, FireState};
use wildfire_fuel::PowPlan;
use wildfire_grid::{Field3, Grid3, VectorField2};

/// Parameters of the flame geometry model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlameModel {
    /// Byram coefficient (m per (kW/m)^exponent).
    pub byram_coeff: f64,
    /// Byram exponent.
    pub byram_exp: f64,
    /// Effective flame-depth (m) converting area flux to fireline intensity.
    pub flame_depth: f64,
    /// Nominal flame gas temperature (K).
    pub flame_temperature: f64,
    /// Buoyant velocity scale (m/s) against which wind tilts the flame.
    pub buoyant_velocity: f64,
    /// Vertical voxel resolution (m).
    pub dz: f64,
    /// Maximum flame height considered (m); bounds the voxel volume.
    pub max_height: f64,
    /// Optical extinction coefficient of flame gas (1/m) — controls voxel
    /// emissivity via Beer's law.
    pub kappa: f64,
}

impl Default for FlameModel {
    fn default() -> Self {
        FlameModel {
            byram_coeff: 0.0775,
            byram_exp: 0.46,
            flame_depth: 3.0,
            flame_temperature: 1200.0,
            buoyant_velocity: 3.0,
            dz: 1.5,
            max_height: 18.0,
            kappa: 0.25,
        }
    }
}

impl FlameModel {
    /// The power plan for `I^byram_exp`, precomputed once per volume build
    /// so the per-node evaluation goes through the vectorizable polynomial
    /// kernel ([`wildfire_fuel::fast_pow`]) instead of a libm `powf` call.
    ///
    /// The flame volume is §3.2 visualization geometry, not part of the
    /// bitwise-pinned dynamics, so the kernel's ≤1e-12 relative error is
    /// far below every consumer's tolerance.
    pub fn byram_plan(&self) -> PowPlan {
        PowPlan::fast(self.byram_exp)
    }

    /// Flame length (m) for a local heat flux (W/m²), through Byram's
    /// correlation with `I = flux · flame_depth`.
    pub fn flame_length(&self, flux_w_m2: f64) -> f64 {
        self.flame_length_plan(self.byram_plan(), flux_w_m2)
    }

    /// [`FlameModel::flame_length`] with the Byram power plan hoisted out:
    /// callers evaluating many nodes build the plan once via
    /// [`FlameModel::byram_plan`] and pass it here.
    pub fn flame_length_plan(&self, plan: PowPlan, flux_w_m2: f64) -> f64 {
        if flux_w_m2 <= 0.0 {
            return 0.0;
        }
        let intensity_kw_m = flux_w_m2 * self.flame_depth / 1000.0;
        (self.byram_coeff * plan.eval(intensity_kw_m)).min(self.max_height)
    }

    /// Flame tilt from vertical (radians) for a wind speed (m/s):
    /// `atan(wind / buoyant_velocity)`, capped at 75°.
    pub fn tilt(&self, wind_speed: f64) -> f64 {
        (wind_speed.max(0.0) / self.buoyant_velocity)
            .atan()
            .min(75.0_f64.to_radians())
    }
}

/// The voxelized flame: emission density (W·m⁻³ proxy) on a 3-D grid over
/// the fire domain.
#[derive(Debug, Clone, Default)]
pub struct FlameVolume {
    /// Emission-weighted voxel field; value is the local volumetric heat
    /// release density (W/m³) assigned to flame gas.
    pub emission: Field3,
    /// The geometry model used to build the volume.
    pub model: FlameModel,
}

impl FlameVolume {
    /// Builds the flame volume for `state` at time `t` under the given
    /// surface wind (fire-grid resolution; used for the tilt).
    ///
    /// Every burning fire-mesh node contributes a tilted column of voxels
    /// whose height is the local flame length and whose total emission is
    /// the local sensible heat release (radiation is later taken as a
    /// fraction of it via the voxel emissivities).
    pub fn build(
        mesh: &FireMesh,
        state: &FireState,
        wind: &VectorField2,
        t: f64,
        model: FlameModel,
    ) -> FlameVolume {
        let mut out = FlameVolume {
            emission: Field3::default(),
            model,
        };
        let mut fluxes = HeatFluxFields::default();
        out.rebuild(mesh, state, wind, t, model, &mut fluxes);
        out
    }

    /// Allocation-free [`FlameVolume::build`]: re-targets the emission
    /// voxel grid and overwrites it in place, drawing the heat-flux
    /// evaluation through the caller's `fluxes` scratch (no heap traffic
    /// once every shape has been seen).
    pub fn rebuild(
        &mut self,
        mesh: &FireMesh,
        state: &FireState,
        wind: &VectorField2,
        t: f64,
        model: FlameModel,
        fluxes: &mut HeatFluxFields,
    ) {
        self.model = model;
        let g2 = mesh.grid;
        let nz = ((model.max_height / model.dz).ceil() as usize).max(1);
        let g3 = Grid3::new(g2.nx, g2.ny, nz, g2.dx, g2.dy, model.dz)
            .expect("fire grid dims are positive");
        self.emission.resize_zeroed(g3);
        let emission = &mut self.emission;
        heat_fluxes_into(mesh, state, t, fluxes);
        // One plan for the whole volume: the Byram exponent is a model
        // constant, so the pow kernel's range checks hoist out of the loop.
        let byram = model.byram_plan();
        for iy in 0..g2.ny {
            for ix in 0..g2.nx {
                let q = fluxes.sensible.get(ix, iy);
                if q <= 0.0 {
                    continue;
                }
                let length = model.flame_length_plan(byram, q);
                if length <= 0.0 {
                    continue;
                }
                let (wu, wv) = wind.get(ix, iy);
                let speed = (wu * wu + wv * wv).sqrt();
                let tilt = model.tilt(speed);
                // Unit tilt direction in the horizontal plane.
                let (dirx, diry) = if speed > 1e-9 {
                    (wu / speed, wv / speed)
                } else {
                    (0.0, 0.0)
                };
                let height = length * tilt.cos();
                let n_vox = ((height / model.dz).ceil() as usize).clamp(1, nz);
                // Column emission density: total flux spread over the flame
                // volume above this node.
                let density = q / (n_vox as f64 * model.dz);
                for kv in 0..n_vox {
                    let z = (kv as f64 + 0.5) * model.dz;
                    // Horizontal offset of the tilted axis at this height.
                    let off = z * tilt.tan();
                    let jx = ((ix as f64 + off * dirx / g2.dx).round() as isize)
                        .clamp(0, g2.nx as isize - 1) as usize;
                    let jy = ((iy as f64 + off * diry / g2.dy).round() as isize)
                        .clamp(0, g2.ny as isize - 1) as usize;
                    emission.add(jx, jy, kv, density);
                }
            }
        }
    }

    /// Total emitted power represented by the volume (W).
    pub fn total_power(&self) -> f64 {
        self.emission.integral() / self.emission.grid().dz * self.model.dz
    }

    /// Maximum flame-top height with nonzero emission (m).
    pub fn flame_top(&self) -> f64 {
        let g = self.emission.grid();
        let mut top = 0.0;
        for k in 0..g.nz {
            let any = (0..g.ny).any(|j| (0..g.nx).any(|i| self.emission.get(i, j, k) > 0.0));
            if any {
                top = (k as f64 + 1.0) * g.dz;
            }
        }
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wildfire_fire::ignition::IgnitionShape;
    use wildfire_fuel::FuelCategory;
    use wildfire_grid::Grid2;

    fn setup() -> (FireMesh, FireState) {
        let g = Grid2::new(31, 31, 2.0, 2.0).unwrap();
        let mesh = FireMesh::flat(g, FuelCategory::TallGrass);
        let state = FireState::ignite(
            g,
            &[IgnitionShape::Circle {
                center: (30.0, 30.0),
                radius: 10.0,
            }],
            0.0,
        );
        (mesh, state)
    }

    #[test]
    fn byram_length_monotone() {
        let m = FlameModel::default();
        assert_eq!(m.flame_length(0.0), 0.0);
        let l1 = m.flame_length(50_000.0);
        let l2 = m.flame_length(200_000.0);
        assert!(l1 > 0.0);
        assert!(l2 > l1);
        assert!(m.flame_length(1e12) <= m.max_height);
    }

    /// The hoisted pow-kernel path stays within the kernel's 1e-12
    /// relative-error contract of the libm reference across the flux range.
    #[test]
    fn byram_plan_matches_libm_reference() {
        let m = FlameModel::default();
        for e in 0..80 {
            let flux = 10.0_f64 * 1.5_f64.powi(e);
            let i_kw = flux * m.flame_depth / 1000.0;
            let reference = (m.byram_coeff * i_kw.powf(m.byram_exp)).min(m.max_height);
            let hoisted = m.flame_length_plan(m.byram_plan(), flux);
            assert!(
                (hoisted - reference).abs() <= 1e-12 * reference.abs(),
                "flux {flux}: {hoisted} vs {reference}"
            );
        }
    }

    #[test]
    fn tilt_increases_with_wind_and_caps() {
        let m = FlameModel::default();
        assert_eq!(m.tilt(0.0), 0.0);
        assert!(m.tilt(3.0) > 0.7); // atan(1) ≈ 0.785
        assert!(m.tilt(1000.0) <= 75.0_f64.to_radians() + 1e-12);
    }

    #[test]
    fn volume_has_emission_over_fire_only() {
        let (mesh, state) = setup();
        let wind = VectorField2::zeros(mesh.grid);
        let vol = FlameVolume::build(&mesh, &state, &wind, 5.0, FlameModel::default());
        // Emission above the burning center, none in the far corner.
        assert!(vol.emission.get(15, 15, 0) > 0.0);
        assert_eq!(vol.emission.get(30, 30, 0), 0.0);
        assert!(vol.flame_top() > 0.0);
    }

    #[test]
    fn wind_tilts_flame_downwind() {
        let (mesh, state) = setup();
        let calm = VectorField2::zeros(mesh.grid);
        let windy = VectorField2::from_fn(mesh.grid, |_, _| (12.0, 0.0));
        let model = FlameModel::default();
        let v_calm = FlameVolume::build(&mesh, &state, &calm, 5.0, model);
        let v_wind = FlameVolume::build(&mesh, &state, &windy, 5.0, model);
        // With wind, even the lowest voxel layer (z = dz/2 up the tilted
        // axis) is displaced downwind: compare the emission-weighted mean x.
        let g = v_calm.emission.grid();
        let k = 0;
        let mean_x = |v: &FlameVolume| -> f64 {
            let mut sx = 0.0;
            let mut s = 0.0;
            for j in 0..g.ny {
                for i in 0..g.nx {
                    let e = v.emission.get(i, j, k);
                    sx += e * i as f64;
                    s += e;
                }
            }
            if s > 0.0 {
                sx / s
            } else {
                f64::NAN
            }
        };
        let mx_calm = mean_x(&v_calm);
        let mx_wind = mean_x(&v_wind);
        assert!(
            mx_wind > mx_calm + 0.3,
            "tilt must displace emission downwind: {mx_calm} vs {mx_wind}"
        );
    }

    #[test]
    fn no_fire_no_flame() {
        let g = Grid2::new(11, 11, 2.0, 2.0).unwrap();
        let mesh = FireMesh::flat(g, FuelCategory::Brush);
        let state = FireState::unburned(g);
        let wind = VectorField2::zeros(g);
        let vol = FlameVolume::build(&mesh, &state, &wind, 100.0, FlameModel::default());
        assert_eq!(vol.flame_top(), 0.0);
        assert_eq!(vol.emission.sum(), 0.0);
    }
}
