//! The rendering pipeline: the three radiance components of §3.2 composed
//! along camera rays, with Beer–Lambert atmospheric transmission.

use crate::camera::Camera;
use crate::flame::{FlameModel, FlameVolume};
use crate::ground::GroundThermalModel;
use crate::image::SceneImage;
use crate::radiance::{band_radiance_rule, band_rule, total_emissive_power};
use crate::Result;
use wildfire_fire::heat::{heat_fluxes_at, HeatFluxFields};
use wildfire_fire::{FireMesh, FireState};
use wildfire_grid::{Field2, VectorField2};
use wildfire_math::quadrature::FixedRule;

/// Scene generation parameters.
#[derive(Debug, Clone)]
pub struct SceneConfig {
    /// Sensor band (m); default mid-wave 3–5 µm.
    pub band: (f64, f64),
    /// Ground cooling model (double exponential of §3.2).
    pub ground: GroundThermalModel,
    /// Flame geometry model.
    pub flame: FlameModel,
    /// Ground emissivity in-band (burn scars are highly emissive, §3.2).
    pub ground_emissivity: f64,
    /// Ground reflectivity in-band (drives the reflected-flame halo; the
    /// paper notes this term matters in the near/mid-wave).
    pub ground_reflectivity: f64,
    /// Atmospheric extinction coefficient (1/m); Beer–Lambert along the
    /// slant path.
    pub atm_extinction: f64,
    /// Radius (m) within which flame voxels illuminate the ground for the
    /// reflected component (truncates the O(pixels·voxels) sum).
    pub reflection_radius: f64,
    /// Ray-march step (m) through the flame volume.
    pub march_step: f64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            band: (3.0e-6, 5.0e-6),
            ground: GroundThermalModel::default(),
            flame: FlameModel::default(),
            ground_emissivity: 0.95,
            ground_reflectivity: 0.05,
            atm_extinction: 4.0e-5,
            reflection_radius: 60.0,
            march_step: 1.0,
        }
    }
}

/// Reusable intermediates of [`render_scene_into`]: the ground-temperature
/// field, the voxelized flame (with its heat-flux scratch), and the
/// reflection source list. One scratch per rendering worker; every buffer
/// is re-targeted in place, so steady-state rendering is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct RenderScratch {
    /// Ground temperature (K) on the fire grid.
    pub ground_temp: Field2,
    /// Voxelized flame emission.
    pub flames: FlameVolume,
    /// Heat-flux evaluation scratch for the flame rebuild.
    pub fluxes: HeatFluxFields,
    /// Flame-voxel point sources `(x, y, z, band power)` for the
    /// reflected-radiance term.
    pub sources: Vec<(f64, f64, f64, f64)>,
    /// Cached band-quadrature rule, keyed by the sensor band it was built
    /// for; rebuilt only when the band changes (the per-pixel Planck
    /// integrals all share it).
    band_rule: Option<((f64, f64), FixedRule)>,
}

impl RenderScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Renders the synthetic mid-wave image of the fire state at time `t` as
/// seen by `camera` — the synthetic-data half of the assimilation loop.
///
/// Allocating convenience over [`render_scene_into`]; per-member loops
/// (ensemble observation operators) should hold a [`RenderScratch`] and an
/// output image and use the `_into` form.
///
/// # Errors
/// Propagates image-construction failures.
pub fn render_scene(
    mesh: &FireMesh,
    state: &FireState,
    wind: &VectorField2,
    t: f64,
    camera: &Camera,
    config: &SceneConfig,
) -> Result<SceneImage> {
    let mut img = SceneImage::default();
    let mut scratch = RenderScratch::new();
    render_scene_into(mesh, state, wind, t, camera, config, &mut img, &mut scratch)?;
    Ok(img)
}

/// Allocation-free [`render_scene`]: renders into `img` (re-targeted to the
/// camera resolution) drawing every intermediate from `scratch`. Bitwise
/// identical to the allocating form; no heap traffic once every shape has
/// been seen.
///
/// # Errors
/// Propagates image-construction failures.
#[allow(clippy::too_many_arguments)]
pub fn render_scene_into(
    mesh: &FireMesh,
    state: &FireState,
    wind: &VectorField2,
    t: f64,
    camera: &Camera,
    config: &SceneConfig,
    img: &mut SceneImage,
    scratch: &mut RenderScratch,
) -> Result<()> {
    let (w, h) = camera.pixels;
    img.resize(w, h, config.band)?;

    // Component inputs.
    config
        .ground
        .temperature_field_into(mesh, state, t, &mut scratch.ground_temp);
    if scratch
        .band_rule
        .as_ref()
        .is_none_or(|(band, _)| *band != config.band)
    {
        scratch.band_rule = Some((config.band, band_rule(config.band.0, config.band.1)));
    }
    let ground_temp = &scratch.ground_temp;
    scratch
        .flames
        .rebuild(mesh, state, wind, t, config.flame, &mut scratch.fluxes);
    let flames = &scratch.flames;
    let fg3 = flames.emission.grid();
    let rule = &scratch.band_rule.as_ref().expect("band rule built above").1;
    let flame_band_radiance = band_radiance_rule(rule, config.flame.flame_temperature);
    let ambient_radiance = band_radiance_rule(rule, config.ground.ambient);

    // Precompute, per flame voxel, its band power for the reflection term:
    // P = ε_vox · B_band(T_f) · π · A_cross (W/sr integrated over the
    // hemisphere ≈ isotropic point source of band power 4π·I).
    let sources = &mut scratch.sources; // (x, y, z, band power)
    sources.clear();
    for k in 0..fg3.nz {
        for j in 0..fg3.ny {
            for i in 0..fg3.nx {
                if flames.emission.get(i, j, k) <= 0.0 {
                    continue;
                }
                let eps = 1.0 - (-config.flame.kappa * fg3.dz).exp();
                // A flame above a fire-mesh node is at most flame_depth wide,
                // which can be well below the mesh cell — use the smaller
                // cross-section as the emitting face.
                let face =
                    (config.flame.flame_depth * config.flame.flame_depth).min(fg3.dx * fg3.dy);
                let p_band = eps * flame_band_radiance * std::f64::consts::PI * face;
                let g2 = mesh.grid;
                let (ox, oy) = g2.origin;
                sources.push((
                    ox + i as f64 * g2.dx,
                    oy + j as f64 * g2.dy,
                    (k as f64 + 0.5) * fg3.dz,
                    p_band,
                ));
            }
        }
    }

    let g2 = mesh.grid;
    let (ox, oy) = g2.origin;
    let refl_r2 = config.reflection_radius * config.reflection_radius;
    // Hoisted out of the pixel loop: the flame-top scan is O(voxels).
    let flame_top = flames.flame_top();
    for py in 0..h {
        for px in 0..w {
            let (gx, gy) = camera.pixel_ground_point(px, py);

            // (1) Hot-ground emission.
            let tg = ground_temp.sample_bilinear(gx, gy);
            let l_ground = config.ground_emissivity * band_radiance_rule(rule, tg)
                + (1.0 - config.ground_emissivity) * ambient_radiance;

            // (3) Flame radiance reflected from the ground (Lambertian).
            let mut irradiance = 0.0;
            for &(sx, sy, sz, p) in sources.iter() {
                let dx = sx - gx;
                let dy = sy - gy;
                let d2h = dx * dx + dy * dy;
                if d2h > refl_r2 {
                    continue;
                }
                let d2 = d2h + sz * sz;
                if d2 < 1.0 {
                    continue; // the pixel is inside the flame footprint
                }
                let cos_inc = sz / d2.sqrt();
                irradiance += p * cos_inc / (4.0 * std::f64::consts::PI * d2);
            }
            let l_reflected = config.ground_reflectivity * irradiance / std::f64::consts::PI;

            // (2) Direct flame emission + flame transmittance along the ray.
            // March upward from the ground point along the (reversed) view
            // ray through the flame layer.
            let (rdx, rdy, rdz) = camera.ray_direction(px, py);
            // Upward direction = −ray direction.
            let (ux, uy, uz) = (-rdx, -rdy, -rdz);
            let mut l_flame = 0.0;
            let mut trans = 1.0;
            if !sources.is_empty() && uz > 1e-6 {
                let max_s = flame_top / uz;
                let mut s = 0.5 * config.march_step;
                while s <= max_s {
                    let x = gx + s * ux;
                    let y = gy + s * uy;
                    let z = s * uz;
                    // Locate the voxel.
                    let vi = ((x - ox) / g2.dx).round();
                    let vj = ((y - oy) / g2.dy).round();
                    let vk = (z / fg3.dz).floor();
                    if vi >= 0.0
                        && vj >= 0.0
                        && vk >= 0.0
                        && (vi as usize) < fg3.nx
                        && (vj as usize) < fg3.ny
                        && (vk as usize) < fg3.nz
                        && flames.emission.get(vi as usize, vj as usize, vk as usize) > 0.0
                    {
                        let seg_eps = 1.0 - (-config.flame.kappa * config.march_step).exp();
                        // Emission attenuated by what is in front of it
                        // (between the voxel and the sensor = already
                        // accumulated transmittance).
                        l_flame += trans * seg_eps * flame_band_radiance;
                        trans *= 1.0 - seg_eps;
                    }
                    s += config.march_step;
                }
            }

            // Compose: ground signal attenuated by the flame above it, plus
            // direct flame, all attenuated by the atmosphere.
            let path = camera.path_length(px, py);
            let tau_atm = (-config.atm_extinction * path).exp();
            img.set(
                px,
                py,
                tau_atm * (trans * (l_ground + l_reflected) + l_flame),
            );
        }
    }
    Ok(())
}

/// Fire radiative power (W, full spectrum): hot-ground excess emission plus
/// flame-surface emission — the quantity compared against satellite-derived
/// values in the paper's validation (Wooster et al. 2003).
pub fn fire_radiative_power(
    mesh: &FireMesh,
    state: &FireState,
    wind: &VectorField2,
    t: f64,
    config: &SceneConfig,
) -> f64 {
    let g = mesh.grid;
    let ground_temp = config.ground.temperature_field(mesh, state, t);
    let ambient_power = total_emissive_power(config.ground.ambient);
    let mut frp = 0.0;
    for iy in 0..g.ny {
        for ix in 0..g.nx {
            let tg = ground_temp.get(ix, iy);
            if tg > config.ground.ambient {
                frp += config.ground_emissivity
                    * (total_emissive_power(tg) - ambient_power)
                    * g.dx
                    * g.dy;
            }
        }
    }
    // Flame contribution: emitting voxel faces at the flame temperature.
    let flames = FlameVolume::build(mesh, state, wind, t, config.flame);
    let fg3 = flames.emission.grid();
    let eps = 1.0 - (-config.flame.kappa * fg3.dz).exp();
    // Same face-area bound as the renderer: the flame is at most
    // flame_depth wide regardless of the mesh cell size.
    let face_area = (config.flame.flame_depth * config.flame.flame_depth).min(fg3.dx * fg3.dy);
    let flame_power_per_voxel =
        eps * total_emissive_power(config.flame.flame_temperature) * face_area;
    let n_vox = flames
        .emission
        .as_slice()
        .iter()
        .filter(|&&e| e > 0.0)
        .count();
    frp + n_vox as f64 * flame_power_per_voxel
}

/// Radiative fraction: [`fire_radiative_power`] divided by the fire's total
/// heat release rate. Published biomass-burning values fall in roughly
/// 0.05–0.25; EXPERIMENTS.md E3 records where this implementation lands.
pub fn radiative_fraction(
    mesh: &FireMesh,
    state: &FireState,
    wind: &VectorField2,
    t: f64,
    config: &SceneConfig,
) -> f64 {
    let fluxes = heat_fluxes_at(mesh, state, t);
    let total = fluxes.sensible.integral() + fluxes.latent.integral();
    if total <= 0.0 {
        return 0.0;
    }
    fire_radiative_power(mesh, state, wind, t, config) / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use wildfire_fire::ignition::IgnitionShape;
    use wildfire_fuel::FuelCategory;
    use wildfire_grid::Grid2;

    fn setup() -> (FireMesh, FireState, VectorField2, Camera) {
        let g = Grid2::new(41, 41, 4.0, 4.0).unwrap();
        let mesh = FireMesh::flat(g, FuelCategory::TallGrass);
        let state = {
            let mut s = FireState::ignite(
                g,
                &[IgnitionShape::Circle {
                    center: (80.0, 80.0),
                    radius: 24.0,
                }],
                0.0,
            );
            s.time = 20.0;
            s
        };
        let wind = VectorField2::from_fn(g, |_, _| (4.0, 0.0));
        let camera = Camera::over_footprint(3000.0, (0.0, 0.0), (160.0, 160.0), (32, 32));
        (mesh, state, wind, camera)
    }

    #[test]
    fn fire_pixels_vastly_brighter_than_background() {
        let (mesh, state, wind, camera) = setup();
        let img =
            render_scene(&mesh, &state, &wind, 20.0, &camera, &SceneConfig::default()).unwrap();
        let center = img.get(16, 16); // over the fire
        let corner = img.get(0, 0); // unburned
        assert!(center > 10.0 * corner, "contrast {center} vs {corner}");
        assert!(corner > 0.0, "background radiance must not vanish");
    }

    #[test]
    fn brightness_temperature_sensible() {
        let (mesh, state, wind, camera) = setup();
        let img =
            render_scene(&mesh, &state, &wind, 20.0, &camera, &SceneConfig::default()).unwrap();
        let t_corner = img.brightness_temperature_at(0, 0);
        let t_center = img.brightness_temperature_at(16, 16);
        assert!(
            (t_corner - 300.0).abs() < 25.0,
            "background brightness T {t_corner}"
        );
        assert!(t_center > 600.0, "fire brightness T {t_center}");
    }

    #[test]
    fn reflected_halo_brightens_near_fire_background() {
        let (mesh, state, wind, camera) = setup();
        let mut cfg = SceneConfig::default();
        let with_refl = render_scene(&mesh, &state, &wind, 20.0, &camera, &cfg).unwrap();
        cfg.ground_reflectivity = 0.0;
        let without = render_scene(&mesh, &state, &wind, 20.0, &camera, &cfg).unwrap();
        // Find an unburned pixel adjacent to the fire: one ring out from the
        // front (the fire has radius 24 m + 20 s growth within a 160 m
        // footprint; pixel (16, 6) sits ~50 m from the center).
        let p = (16usize, 6usize);
        let a = with_refl.get(p.0, p.1);
        let b = without.get(p.0, p.1);
        assert!(
            a > b,
            "reflection must brighten near-fire ground: {a} vs {b}"
        );
    }

    #[test]
    fn no_fire_scene_is_uniform_ambient() {
        let g = Grid2::new(21, 21, 4.0, 4.0).unwrap();
        let mesh = FireMesh::flat(g, FuelCategory::Brush);
        let state = FireState::unburned(g);
        let wind = VectorField2::zeros(g);
        let camera = Camera::over_footprint(3000.0, (0.0, 0.0), (80.0, 80.0), (16, 16));
        let img =
            render_scene(&mesh, &state, &wind, 0.0, &camera, &SceneConfig::default()).unwrap();
        let (lo, hi) = img.min_max();
        assert!(lo > 0.0);
        // Only the slant-path atmospheric variation remains (< 1%).
        assert!((hi - lo) / hi < 0.01, "spread {}", (hi - lo) / hi);
    }

    #[test]
    fn radiative_fraction_in_published_range() {
        let (mesh, state, wind, _) = setup();
        let frac = radiative_fraction(&mesh, &state, &wind, 20.0, &SceneConfig::default());
        assert!(
            (0.02..0.40).contains(&frac),
            "radiative fraction {frac} outside plausible range"
        );
    }

    /// The workspace path is the same renderer: `render_scene_into` with a
    /// warm (and even a cross-contaminated) scratch must reproduce the
    /// allocating `render_scene` bit for bit, frame after frame.
    #[test]
    fn render_into_matches_allocating_render_bitwise() {
        let (mesh, state, wind, camera) = setup();
        let cfg = SceneConfig::default();
        let mut img = SceneImage::default();
        let mut scratch = RenderScratch::new();
        for t in [5.0, 20.0, 60.0] {
            let reference = render_scene(&mesh, &state, &wind, t, &camera, &cfg).unwrap();
            render_scene_into(
                &mesh,
                &state,
                &wind,
                t,
                &camera,
                &cfg,
                &mut img,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(img, reference, "t = {t}");
        }
        // A smaller camera re-targets the warm buffers without residue.
        let small = Camera::over_footprint(3000.0, (0.0, 0.0), (160.0, 160.0), (16, 16));
        let reference = render_scene(&mesh, &state, &wind, 20.0, &small, &cfg).unwrap();
        render_scene_into(
            &mesh,
            &state,
            &wind,
            20.0,
            &small,
            &cfg,
            &mut img,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(img, reference);
    }

    #[test]
    fn render_into_rejects_zero_resolution() {
        let (mesh, state, wind, _) = setup();
        let camera = Camera::over_footprint(3000.0, (0.0, 0.0), (160.0, 160.0), (0, 16));
        let mut img = SceneImage::default();
        let mut scratch = RenderScratch::new();
        assert!(render_scene_into(
            &mesh,
            &state,
            &wind,
            20.0,
            &camera,
            &SceneConfig::default(),
            &mut img,
            &mut scratch
        )
        .is_err());
    }

    #[test]
    fn frp_zero_without_fire() {
        let g = Grid2::new(11, 11, 4.0, 4.0).unwrap();
        let mesh = FireMesh::flat(g, FuelCategory::Brush);
        let state = FireState::unburned(g);
        let wind = VectorField2::zeros(g);
        assert_eq!(
            fire_radiative_power(&mesh, &state, &wind, 0.0, &SceneConfig::default()),
            0.0
        );
        assert_eq!(
            radiative_fraction(&mesh, &state, &wind, 0.0, &SceneConfig::default()),
            0.0
        );
    }
}
