//! Ground temperature history under and behind the fire front (§3.2).
//!
//! "The 2D fire front and cooling are estimated with a double exponential.
//! The time constants are 75 seconds and 250 seconds and the peak
//! temperature at the fire front is constrained to 1075 K."

use wildfire_fire::{FireMesh, FireState, UNBURNED};
use wildfire_grid::Field2;

/// Parameters of the double-exponential ground thermal model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundThermalModel {
    /// Ambient ground temperature (K).
    pub ambient: f64,
    /// Peak temperature at the fire front (K) — the paper constrains 1075 K.
    pub peak: f64,
    /// Fast cooling time constant (s) — the paper: 75 s.
    pub tau_fast: f64,
    /// Slow cooling time constant (s) — the paper: 250 s.
    pub tau_slow: f64,
    /// Fraction of the peak excess carried by the fast mode.
    pub fast_fraction: f64,
}

impl Default for GroundThermalModel {
    fn default() -> Self {
        GroundThermalModel {
            ambient: 300.0,
            peak: 1075.0,
            tau_fast: 75.0,
            tau_slow: 250.0,
            fast_fraction: 0.6,
        }
    }
}

impl GroundThermalModel {
    /// Ground temperature (K) `dt` seconds after front passage; ambient for
    /// `dt < 0` (front not yet arrived).
    pub fn temperature(&self, dt: f64) -> f64 {
        if dt < 0.0 {
            return self.ambient;
        }
        let excess = self.peak - self.ambient;
        self.ambient
            + excess
                * (self.fast_fraction * (-dt / self.tau_fast).exp()
                    + (1.0 - self.fast_fraction) * (-dt / self.tau_slow).exp())
    }

    /// Ground-temperature field (K) for a fire state at time `t`, using the
    /// ignition-time field as the front arrival time.
    pub fn temperature_field(&self, mesh: &FireMesh, state: &FireState, t: f64) -> Field2 {
        let mut out = Field2::default();
        self.temperature_field_into(mesh, state, t, &mut out);
        out
    }

    /// Allocation-free [`GroundThermalModel::temperature_field`]: re-targets
    /// `out` to the fire grid and overwrites every node (no heap traffic
    /// once the shape has been seen).
    pub fn temperature_field_into(
        &self,
        mesh: &FireMesh,
        state: &FireState,
        t: f64,
        out: &mut Field2,
    ) {
        let g = mesh.grid;
        out.resize_no_zero(g);
        let tig = state.tig.as_slice();
        for (o, &ti) in out.as_mut_slice().iter_mut().zip(tig) {
            *o = if ti == UNBURNED {
                self.ambient
            } else {
                self.temperature(t - ti)
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wildfire_fire::ignition::IgnitionShape;
    use wildfire_fuel::FuelCategory;
    use wildfire_grid::Grid2;

    #[test]
    fn peak_at_front_and_ambient_before() {
        let m = GroundThermalModel::default();
        assert_eq!(m.temperature(-10.0), 300.0);
        assert!((m.temperature(0.0) - 1075.0).abs() < 1e-9);
    }

    #[test]
    fn cooling_is_monotone_to_ambient() {
        let m = GroundThermalModel::default();
        let mut prev = m.temperature(0.0);
        for i in 1..200 {
            let t = m.temperature(i as f64 * 10.0);
            assert!(t <= prev + 1e-12);
            assert!(t >= m.ambient);
            prev = t;
        }
        assert!((m.temperature(1e5) - 300.0).abs() < 1e-6);
    }

    #[test]
    fn double_exponential_structure() {
        let m = GroundThermalModel::default();
        // At one fast time constant, the fast mode has decayed to 1/e.
        let expected = 300.0 + 775.0 * (0.6 * (-1.0_f64).exp() + 0.4 * (-75.0_f64 / 250.0).exp());
        assert!((m.temperature(75.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn field_mixes_burned_and_unburned() {
        let g = Grid2::new(21, 21, 2.0, 2.0).unwrap();
        let mesh = FireMesh::flat(g, FuelCategory::ShortGrass);
        let state = FireState::ignite(
            g,
            &[IgnitionShape::Circle {
                center: (20.0, 20.0),
                radius: 8.0,
            }],
            0.0,
        );
        let m = GroundThermalModel::default();
        let field = m.temperature_field(&mesh, &state, 10.0);
        assert_eq!(field.get(0, 0), 300.0); // unburned corner
        let center = field.get(10, 10);
        assert!(center > 900.0, "center {center}"); // 10 s after ignition
    }
}
