//! # wildfire
//!
//! Umbrella crate for the reproduction of *Mandel et al., "Towards a
//! Real-Time Data Driven Wildland Fire Model"* (IPDPS 2008, arXiv:0801.3875).
//!
//! Re-exports every sub-crate of the workspace under a stable prefix so that
//! applications can depend on a single crate:
//!
//! ```
//! use wildfire::math::Matrix;
//! let id = Matrix::identity(3);
//! assert_eq!(id.trace().unwrap(), 3.0);
//! ```
//!
//! The sub-crates, bottom of the dependency stack first:
//!
//! | module | contents |
//! |---|---|
//! | [`math`] | dense linear algebra, RNG, statistics, quadrature |
//! | [`grid`] | structured 2-D/3-D fields, interpolation, mesh transfer |
//! | [`fuel`] | fuel categories, mass-loss kinetics, heat partitioning |
//! | [`fire`] | spread model + level-set front propagation (§2.1–2.2) |
//! | [`atmos`] | Boussinesq atmospheric dynamics, WRF substitute (§2.3) |
//! | [`core`] | the two-way coupled fire–atmosphere model (§2) |
//! | [`scene`] | synthetic infrared scene generation (§3.2) |
//! | [`obs`] | observation functions & disk state exchange (§3.1) |
//! | [`enkf`] | EnKF, registration, morphing EnKF (§3.3) |
//! | [`ensemble`] | parallel ensemble driver, assimilation cycles (Fig. 2) |
//! | [`sim`] | scenario descriptors, builder, registry, ensemble hooks |
//! | [`service`] | threaded forecast service over the batched executor |

pub use wildfire_atmos as atmos;
pub use wildfire_core as core;
pub use wildfire_enkf as enkf;
pub use wildfire_ensemble as ensemble;
pub use wildfire_fire as fire;
pub use wildfire_fuel as fuel;
pub use wildfire_grid as grid;
pub use wildfire_math as math;
pub use wildfire_obs as obs;
pub use wildfire_scene as scene;
pub use wildfire_service as service;
pub use wildfire_sim as sim;
