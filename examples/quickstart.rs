//! Quickstart: ignite a grass fire under a light wind, run the two-way
//! coupled fire-atmosphere model for two minutes, and print diagnostics.
//!
//! Run with: `cargo run --release --example quickstart`

use wildfire::fire::ignition::IgnitionShape;
use wildfire::sim::{DomainSpec, SimulationBuilder};

fn main() {
    // A 480 m x 480 m domain: 8x8 atmosphere cells of 60 m x 5 levels,
    // fire mesh refined 10x to 6 m (the paper's configuration, Sec. 2.3),
    // with a 25 m ignition circle lit in the middle of the domain.
    let mut sim = SimulationBuilder::new()
        .name("quickstart")
        .domain(DomainSpec::SMALL.with_refinement(10))
        .ambient_wind(3.0, 0.0)
        .ignite(IgnitionShape::Circle {
            center: (240.0, 240.0),
            radius: 25.0,
        })
        .build()
        .expect("valid scenario");

    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>12}",
        "t [s]", "area [m2]", "w_max", "P_sens [MW]", "max wind"
    );
    sim.run_until(120.0, |_, diag| {
        if (diag.time / 10.0).fract() < 1e-9 {
            println!(
                "{:7.1} {:12.0} {:10.3} {:12.2} {:12.2}",
                diag.time,
                diag.burned_area,
                diag.max_updraft,
                diag.total_sensible_power / 1e6,
                diag.max_surface_wind,
            );
        }
    })
    .expect("simulation");

    println!(
        "\nFinal burned area: {:.0} m2",
        sim.state.fire.burned_area()
    );
    println!(
        "Fire-induced updraft: {:.2} m/s",
        sim.state.atmos.max_updraft()
    );
    println!(
        "The updraft is the two-way coupling at work: fire heat -> buoyancy -> modified winds."
    );
}
