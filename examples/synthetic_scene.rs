//! The Fig. 3 scenario: render the mid-wave (3-5 um) infrared image of a
//! grass fire as seen from 3000 m, write it to a PGM file, and validate the
//! fire radiated energy against published biomass-burning values.
//!
//! Run with: `cargo run --release --example synthetic_scene`

use std::path::Path;
use wildfire::obs::image_obs::ImageObservation;
use wildfire::scene::render::{radiative_fraction, SceneConfig};
use wildfire::sim::registry;

fn main() {
    // The registry's tall-grass burn framed for the Fig. 3 scene.
    let scenario = registry::by_name(registry::GRASS_SCENE).expect("registry scenario");
    let mut sim = scenario.build().expect("valid scenario");
    sim.run_until(60.0, |_, _| {}).expect("burn");
    let (model, state) = (&sim.model, &sim.state);

    // The paper's geometry: WASP-like camera ~3000 m above ground.
    let obs = ImageObservation::over_fire_domain(model, 3000.0, 128);
    let img = obs.synthetic_image(model, state).expect("render");
    let out = Path::new("synthetic_scene.pgm");
    img.write_pgm(out).expect("write");

    let bt = img.to_brightness_temperature();
    let peak = bt.iter().cloned().fold(0.0_f64, f64::max);
    println!(
        "Rendered {}x{} mid-wave IR image -> {}",
        img.width,
        img.height,
        out.display()
    );
    println!("Peak brightness temperature: {peak:.0} K (front model constrained to 1075 K)");

    let wind = model.fire_wind(state).expect("wind");
    let frac = radiative_fraction(
        model.fire.mesh(),
        &state.fire,
        &wind,
        state.time(),
        &SceneConfig::default(),
    );
    println!("Radiative fraction of total heat release: {frac:.3}");
    println!("Published biomass-burning range (Wooster et al. 2003 lineage): ~0.05-0.25");
}
