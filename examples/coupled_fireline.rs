//! The Fig. 1 scenario: two line ignitions and one circle ignition merge
//! while the fire couples to the atmosphere; an ASCII rendering of the
//! heat-flux field shows the fronts, and coupled vs uncoupled runs are
//! compared quantitatively.
//!
//! Run with: `cargo run --release --example coupled_fireline`

use wildfire::core::CoupledModel;
use wildfire::fire::heat::heat_fluxes;
use wildfire::fire::ignition::IgnitionShape;
use wildfire::fire::perimeter::burning_components;

fn ascii_render(model: &CoupledModel, state: &wildfire::core::CoupledState) {
    let fluxes = heat_fluxes(&model.fire.mesh, &state.fire);
    let g = model.fire_grid;
    let (_, max_flux) = fluxes.sensible.min_max();
    let rows = 30;
    let cols = 60;
    println!("+{}+", "-".repeat(cols));
    for r in (0..rows).rev() {
        let mut line = String::new();
        for c in 0..cols {
            let ix = c * (g.nx - 1) / (cols - 1);
            let iy = r * (g.ny - 1) / (rows - 1);
            let q = fluxes.sensible.get(ix, iy);
            let psi = state.fire.psi.get(ix, iy);
            line.push(if q > 0.5 * max_flux {
                '#'
            } else if q > 0.05 * max_flux {
                '+'
            } else if psi < 0.0 {
                '.'
            } else {
                ' '
            });
        }
        println!("|{line}|");
    }
    println!("+{}+", "-".repeat(cols));
    println!("  # intense heat flux   + moderate   . burned over   (fire mesh {}x{})", g.nx, g.ny);
}

fn main() {
    let shapes = vec![
        IgnitionShape::Line { start: (150.0, 210.0), end: (150.0, 330.0), half_width: 6.0 },
        IgnitionShape::Line { start: (210.0, 150.0), end: (330.0, 150.0), half_width: 6.0 },
        IgnitionShape::Circle { center: (330.0, 330.0), radius: 25.0 },
    ];
    let model = wildfire_bench_model();
    let mut state = model.ignite(&shapes, 0.0);
    println!("Initial configuration: {} separate fires", burning_components(&state.fire.psi));

    for checkpoint in [60.0, 180.0, 300.0] {
        model.run(&mut state, checkpoint, 0.5, |_, _| {}).expect("run");
        println!("\n=== t = {checkpoint} s ===");
        ascii_render(&model, &state);
        println!(
            "burning components: {}   burned area: {:.0} m2   max updraft: {:.2} m/s",
            burning_components(&state.fire.psi),
            state.fire.burned_area(),
            state.atmos.max_updraft(),
        );
    }
    println!("\nThe fronts merge into a single perimeter and the coupled updraft");
    println!("slows/roughens the downwind front (compare the fig1_coupled harness).");
}

/// Same configuration as the E1 harness (600 m domain, 6 m fire mesh).
fn wildfire_bench_model() -> CoupledModel {
    use wildfire::atmos::state::AtmosGrid;
    use wildfire::atmos::AtmosParams;
    use wildfire::fuel::FuelCategory;
    CoupledModel::new(
        AtmosGrid { nx: 10, ny: 10, nz: 6, dx: 60.0, dy: 60.0, dz: 50.0 },
        AtmosParams { ambient_wind: (3.0, 0.0), ..Default::default() },
        FuelCategory::ShortGrass,
        10,
    )
    .expect("valid configuration")
}
