//! The Fig. 1 scenario: two line ignitions and one circle ignition merge
//! while the fire couples to the atmosphere; an ASCII rendering of the
//! heat-flux field shows the fronts, and coupled vs uncoupled runs are
//! compared quantitatively.
//!
//! Run with: `cargo run --release --example coupled_fireline`

use wildfire::core::CoupledModel;
use wildfire::fire::heat::heat_fluxes;
use wildfire::fire::perimeter::burning_components;
use wildfire::sim::registry;

fn ascii_render(model: &CoupledModel, state: &wildfire::core::CoupledState) {
    let fluxes = heat_fluxes(model.fire.mesh(), &state.fire);
    let g = model.fire_grid;
    let (_, max_flux) = fluxes.sensible.min_max();
    let rows = 30;
    let cols = 60;
    println!("+{}+", "-".repeat(cols));
    for r in (0..rows).rev() {
        let mut line = String::new();
        for c in 0..cols {
            let ix = c * (g.nx - 1) / (cols - 1);
            let iy = r * (g.ny - 1) / (rows - 1);
            let q = fluxes.sensible.get(ix, iy);
            let psi = state.fire.psi.get(ix, iy);
            line.push(if q > 0.5 * max_flux {
                '#'
            } else if q > 0.05 * max_flux {
                '+'
            } else if psi < 0.0 {
                '.'
            } else {
                ' '
            });
        }
        println!("|{line}|");
    }
    println!("+{}+", "-".repeat(cols));
    println!(
        "  # intense heat flux   + moderate   . burned over   (fire mesh {}x{})",
        g.nx, g.ny
    );
}

fn main() {
    // The E1 configuration straight from the scenario registry (600 m
    // domain, 6 m fire mesh, Fig. 1 ignition geometry).
    let scenario = registry::by_name(registry::FIG1_FIRELINE).expect("registry scenario");
    let mut sim = scenario.build().expect("valid scenario");
    println!(
        "Initial configuration: {} separate fires",
        burning_components(&sim.state.fire.psi)
    );

    for checkpoint in [60.0, 180.0, 300.0] {
        sim.run_until(checkpoint, |_, _| {}).expect("run");
        println!("\n=== t = {checkpoint} s ===");
        ascii_render(&sim.model, &sim.state);
        println!(
            "burning components: {}   burned area: {:.0} m2   max updraft: {:.2} m/s",
            burning_components(&sim.state.fire.psi),
            sim.state.fire.burned_area(),
            sim.state.atmos.max_updraft(),
        );
    }
    println!("\nThe fronts merge into a single perimeter and the coupled updraft");
    println!("slows/roughens the downwind front (compare the fig1_coupled harness).");
}
