//! The Fig. 2 data-driven loop, end to end: the `fig2-data-driven` scenario
//! declares a pool of observation streams (gridded ψ every 60 s, a 4-station
//! weather network every 30 s); identical-twin "real data" is synthesized
//! from a truth run and assimilated by
//! [`EnsembleDriver::cycle_obs_ws`] at every timeline instant — the filter
//! never sees the instruments, only the packed `(y, H(X), R)` pool. A
//! free-running ensemble (no assimilation) runs alongside for comparison.
//!
//! Run with: `cargo run --release --example assimilation_cycle [-- quick]`
//! (`quick` shrinks the ensemble and the window for CI smoke runs).

use wildfire::ensemble::driver::{EnsembleDriver, EnsembleWorkspace, ObsFilter};
use wildfire::fire::ignition::IgnitionShape;
use wildfire::math::GaussianSampler;
use wildfire::obs::ObservationOperator;
use wildfire::sim::{perturb, registry, PerturbationSpec};

fn mean_psi_rmse(
    members: &[wildfire::core::CoupledState],
    truth: &wildfire::core::CoupledState,
) -> f64 {
    members
        .iter()
        .map(|m| m.fire.psi.rmse(&truth.fire.psi).expect("same grid"))
        .sum::<f64>()
        / members.len() as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let (n_members, t_end) = if quick { (8, 60.0) } else { (16, 120.0) };

    // Truth burns at the scenario's nominal location; the ensemble believes
    // a displaced ignition (the Fig. 4 identical-twin setup).
    let scenario = registry::by_name(registry::FIG2_DATA_DRIVEN).expect("registry scenario");
    let believed = scenario.clone().with_ignitions(vec![IgnitionShape::Circle {
        center: (170.0, 190.0),
        radius: 25.0,
    }]);

    let model = scenario.model().expect("valid scenario");
    let driver = EnsembleDriver::new(model, 4);
    let mut truth = scenario.ignite(&driver.model);

    // Realize the declared streams as observation operators, once.
    let operators: Vec<Box<dyn ObservationOperator>> = scenario
        .streams
        .iter()
        .map(|s| s.build_operator(&driver.model))
        .collect();
    let timeline = scenario.timeline(t_end);
    println!(
        "scenario '{}': {} streams, {} observation events in [0, {t_end}] s",
        scenario.name,
        scenario.streams.len(),
        timeline.len(),
    );

    let spec = PerturbationSpec::position_only(12.0, 7);
    let mut members = perturb::perturbed_states(&believed, &spec, n_members, &driver.model)
        .expect("position-only perturbation");
    let mut free = members.clone();

    let mut ws = EnsembleWorkspace::new();
    let mut free_ws = EnsembleWorkspace::new();
    let mut rng = GaussianSampler::new(99);
    let mut data_rng = GaussianSampler::new(4242);
    let mut blocks: Vec<Vec<f64>> = Vec::new();

    println!(
        "{:>7} {:>22} {:>20} {:>12}",
        "t [s]", "pool (m = dim)", "innovation RMS", "psi RMSE"
    );
    for t in timeline.analysis_times() {
        // Advance the truth and synthesize this instant's data pool.
        driver
            .model
            .run(&mut truth, t, scenario.dt, |_, _| {})
            .expect("truth run");
        let due: Vec<usize> = timeline.streams_due_at(t).collect();
        let pool = timeline
            .synthesize_due_pool(&operators, t, &truth, &mut data_rng, &mut blocks)
            .expect("data synthesis");

        // One forecast–analysis cycle against the pool; the free ensemble
        // only forecasts.
        let report = driver
            .cycle_obs_ws(
                &mut members,
                &pool,
                ObsFilter::Standard { inflation: 1.02 },
                t,
                scenario.dt,
                &mut rng,
                &mut ws,
            )
            .expect("cycle");
        driver
            .forecast_ws(&mut free, t, scenario.dt, &mut free_ws)
            .expect("free forecast");

        let names: Vec<&str> = due.iter().map(|&s| operators[s].name()).collect();
        println!(
            "{:7.0} {:>22} {:9.3} -> {:7.3} {:12.4}",
            t,
            format!("{} (m = {})", names.join("+"), pool.total_dim()),
            report.forecast_innovation_rms,
            report.analysis_innovation_rms,
            mean_psi_rmse(&members, &truth),
        );
    }

    let assimilated = mean_psi_rmse(&members, &truth);
    let free_running = mean_psi_rmse(&free, &truth);
    println!("\nensemble-mean psi RMSE vs truth at t = {t_end} s:");
    println!("  assimilated  : {assimilated:8.4}");
    println!("  free-running : {free_running:8.4}");
    println!(
        "  ratio        : {:8.2}x better with the heterogeneous data pool",
        free_running / assimilated
    );
    assert!(
        assimilated < free_running,
        "assimilation must beat the free run"
    );
}
