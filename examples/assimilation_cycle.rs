//! The Fig. 4 scenario: identical-twin data assimilation with the ensemble
//! ignited at an intentionally incorrect location. Compares the standard
//! EnKF (which the paper shows diverging from the data) with the morphing
//! EnKF (which keeps close).
//!
//! Run with: `cargo run --release --example assimilation_cycle`

use wildfire::atmos::state::AtmosGrid;
use wildfire::atmos::AtmosParams;
use wildfire::core::CoupledModel;
use wildfire::enkf::{MorphingConfig, RegistrationConfig};
use wildfire::ensemble::driver::{EnsembleDriver, EnsembleSetup, FilterKind};
use wildfire::ensemble::metrics::evaluate_coupled_ensemble;
use wildfire::fire::ignition::IgnitionShape;
use wildfire::fuel::FuelCategory;
use wildfire::math::GaussianSampler;

fn main() {
    let model = CoupledModel::new(
        AtmosGrid { nx: 8, ny: 8, nz: 5, dx: 60.0, dy: 60.0, dz: 50.0 },
        AtmosParams { ambient_wind: (2.0, 1.0), ..Default::default() },
        FuelCategory::ShortGrass,
        5,
    )
    .expect("valid configuration");
    let driver = EnsembleDriver::new(model, 4);

    // Truth fire at (250, 250); the ensemble believes (160, 190).
    let mut truth = driver
        .model
        .ignite(&[IgnitionShape::Circle { center: (250.0, 250.0), radius: 25.0 }], 0.0);
    let setup = EnsembleSetup {
        n_members: 25, // the paper's ensemble size
        center: (160.0, 190.0),
        radius: 25.0,
        position_spread: 12.0,
        seed: 7,
    };

    let lead_time = 300.0;
    driver.model.run(&mut truth, lead_time, 0.5, |_, _| {}).expect("truth");

    let morph_cfg = MorphingConfig {
        registration: RegistrationConfig {
            max_shift: 150.0,
            shift_samples: 9,
            levels: vec![3],
            iterations: 20,
            ..Default::default()
        },
        sigma_amplitude: 10.0,
        sigma_displacement: 5.0,
        observed_fields: vec![0],
        ..Default::default()
    };

    for filter in [FilterKind::Standard, FilterKind::Morphing] {
        let mut members = driver.initial_ensemble(&setup);
        driver.forecast(&mut members, lead_time, 0.5).expect("forecast");
        let before = evaluate_coupled_ensemble(&members, &truth);
        let mut rng = GaussianSampler::new(99);
        match filter {
            FilterKind::Standard => driver
                .analyze_standard(&mut members, &truth.fire, 7, 2.0, 1.02, &mut rng)
                .expect("analysis"),
            FilterKind::Morphing => driver
                .analyze_morphing(&mut members, &truth.fire, &morph_cfg, &mut rng)
                .expect("analysis"),
        }
        let after = evaluate_coupled_ensemble(&members, &truth);
        println!("=== {filter:?} EnKF ===");
        println!(
            "  position error : {:7.1} m -> {:7.1} m",
            before.mean_position_error, after.mean_position_error
        );
        println!(
            "  shape error    : {:7.0} m2 -> {:7.0} m2",
            before.mean_shape_error, after.mean_shape_error
        );
        println!(
            "  area ratio     : {:7.2}x -> {:7.2}x of truth\n",
            before.mean_area_ratio, after.mean_area_ratio
        );
    }
    println!("The morphing EnKF moves the fires toward the observed location;");
    println!("the standard EnKF's additive update inflates and smears them instead.");
}
