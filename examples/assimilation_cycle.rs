//! The Fig. 4 scenario: identical-twin data assimilation with the ensemble
//! ignited at an intentionally incorrect location. Compares the standard
//! EnKF (which the paper shows diverging from the data) with the morphing
//! EnKF (which keeps close).
//!
//! Run with: `cargo run --release --example assimilation_cycle`

use wildfire::enkf::{MorphingConfig, RegistrationConfig};
use wildfire::ensemble::driver::{EnsembleDriver, FilterKind};
use wildfire::ensemble::metrics::evaluate_coupled_ensemble;
use wildfire::fire::ignition::IgnitionShape;
use wildfire::math::GaussianSampler;
use wildfire::sim::{perturb, registry, PerturbationSpec};

fn main() {
    // Truth fire at (250, 250); the ensemble believes (160, 190). Both are
    // variations of the registry's circle-ignition scenario.
    let truth_scenario = registry::by_name(registry::CIRCLE_IGNITION)
        .expect("registry scenario")
        .with_ambient_wind((2.0, 1.0))
        .with_ignitions(vec![IgnitionShape::Circle {
            center: (250.0, 250.0),
            radius: 25.0,
        }]);
    let believed = truth_scenario
        .clone()
        .with_ignitions(vec![IgnitionShape::Circle {
            center: (160.0, 190.0),
            radius: 25.0,
        }]);
    let spec = PerturbationSpec::position_only(12.0, 7);
    let n_members = 25; // the paper's ensemble size

    let model = truth_scenario.model().expect("valid scenario");
    let mut truth = truth_scenario.ignite(&model);
    let driver = EnsembleDriver::new(model, 4);

    let lead_time = 300.0;
    driver
        .model
        .run(&mut truth, lead_time, 0.5, |_, _| {})
        .expect("truth");

    let morph_cfg = MorphingConfig {
        registration: RegistrationConfig {
            max_shift: 150.0,
            shift_samples: 9,
            levels: vec![3],
            iterations: 20,
            ..Default::default()
        },
        sigma_amplitude: 10.0,
        sigma_displacement: 5.0,
        observed_fields: vec![0],
        ..Default::default()
    };

    for filter in [FilterKind::Standard, FilterKind::Morphing] {
        let mut members = perturb::perturbed_states(&believed, &spec, n_members, &driver.model)
            .expect("position-only perturbation");
        driver
            .forecast(&mut members, lead_time, 0.5)
            .expect("forecast");
        let before = evaluate_coupled_ensemble(&members, &truth);
        let mut rng = GaussianSampler::new(99);
        match filter {
            FilterKind::Standard => driver
                .analyze_standard(&mut members, &truth.fire, 7, 2.0, 1.02, &mut rng)
                .expect("analysis"),
            FilterKind::Morphing => driver
                .analyze_morphing(&mut members, &truth.fire, &morph_cfg, &mut rng)
                .expect("analysis"),
        }
        let after = evaluate_coupled_ensemble(&members, &truth);
        println!("=== {filter:?} EnKF ===");
        println!(
            "  position error : {:7.1} m -> {:7.1} m",
            before.mean_position_error, after.mean_position_error
        );
        println!(
            "  shape error    : {:7.0} m2 -> {:7.0} m2",
            before.mean_shape_error, after.mean_shape_error
        );
        println!(
            "  area ratio     : {:7.2}x -> {:7.2}x of truth\n",
            before.mean_area_ratio, after.mean_area_ratio
        );
    }
    println!("The morphing EnKF moves the fires toward the observed location;");
    println!("the standard EnKF's additive update inflates and smears them instead.");
}
