//! The Sec. 3.1 workflow: a network of weather stations reports location,
//! timestamp, temperature, wind, and humidity; the observation operator
//! locates each station's grid cell, interpolates model fields
//! biquadratically, compares against the reports, and checks for a fireline
//! near each station. The same network then rides the trait-based
//! observation pipeline: wrapped as a [`StationTemperatures`] operator and
//! packed into an [`ObsSet`] — the `(y, H(X), R)` triple the EnKF consumes —
//! against a small ensemble.
//!
//! Run with: `cargo run --release --example weather_stations`

use wildfire::fire::ignition::IgnitionShape;
use wildfire::math::GaussianSampler;
use wildfire::obs::station::{synthesize_reports, WeatherStation};
use wildfire::obs::{ObsSet, ObsWorkspace, ObservationOperator, StationTemperatures};
use wildfire::sim::{perturb, registry, PerturbationSpec};

fn main() {
    // The registry circle-ignition scenario, radius widened to 30 m.
    let scenario = registry::by_name(registry::CIRCLE_IGNITION)
        .expect("registry scenario")
        .with_ignitions(vec![IgnitionShape::Circle {
            center: (240.0, 240.0),
            radius: 30.0,
        }]);
    let mut sim = scenario.build().expect("valid scenario");

    // Burn for 20 s so the fire has heated the boundary layer.
    sim.run_until(20.0, |_, _| {}).expect("run");
    let state = &sim.state;

    // A 4x4 station network across the domain.
    let stations: Vec<WeatherStation> = (0..16)
        .map(|i| {
            let x = 90.0 + (i % 4) as f64 * 100.0;
            let y = 90.0 + (i / 4) as f64 * 100.0;
            WeatherStation::new(format!("STN{i:02}"), x, y)
        })
        .collect();

    // Synthetic "real data" from the truth run with 1 K / 0.5 m/s noise.
    let mut rng = GaussianSampler::new(42);
    let reports = synthesize_reports(&stations, state, 300.0, 1.0, 0.5, &mut rng);

    println!(
        "{:>7} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6}",
        "station", "T_obs [K]", "T_mod [K]", "innov", "wind mod", "cell", "fire?"
    );
    for (s, r) in stations.iter().zip(reports.iter()) {
        let o = s.observe(state, 300.0);
        println!(
            "{:>7} {:9.2} {:9.2} {:9.2} {:5.1},{:4.1} {:>3},{:<3} {:>6}",
            s.id,
            r.temperature,
            o.temperature,
            r.temperature - o.temperature,
            o.wind.0,
            o.wind.1,
            o.cell.0,
            o.cell.1,
            if o.fire_nearby { "YES" } else { "no" }
        );
    }
    println!("\nStations flagged YES have the fireline inside their atmosphere cell");
    println!("or a neighboring one (the Sec. 3.1 fire-presence confirmation).");

    // --- The same network as an assimilation data source -----------------
    // Wrap it as an ObservationOperator and pack it, together with the
    // report temperatures, into the (y, H(X), R) triple against a small
    // perturbed ensemble — what EnsembleDriver::analyze_obs_ws consumes.
    let op = StationTemperatures::new(stations, 300.0, 1.0);
    let temps: Vec<f64> = reports.iter().map(|r| r.temperature).collect();
    let mut pool = ObsSet::new();
    pool.push(&op, &temps).expect("matching dimensions");

    let spec = PerturbationSpec::position_only(15.0, 7);
    let members = perturb::perturbed_states(&scenario, &spec, 4, &sim.model).expect("ensemble");
    let mut ws = ObsWorkspace::new();
    pool.pack_into(&members, &mut ws).expect("pack");
    println!(
        "\npacked as an ObsSet: operator '{}', m = {} observations x N = {} members",
        op.name(),
        pool.total_dim(),
        members.len()
    );
    println!(
        "ensemble-mean innovation RMS against the reports: {:.3} K",
        ws.innovation_rms()
    );
    println!("(the members were just ignited, so their boundary layer is still");
    println!("ambient; the fire-heated report temperatures show up as innovation)");
}
