//! The forecast service end to end: a long-lived [`ForecastService`]
//! owning one shared `SimBatch`, four concurrent forecast requests —
//! one of them steered by a live channel-fed observation stream — and
//! per-request product channels delivering burned-area/perimeter rollups
//! at each requested horizon.
//!
//! This is the paper's operational picture in miniature: a standing
//! "faster than real time" forecast engine that fields requests while
//! data streams in, rather than a one-shot batch job.
//!
//! Run with: `cargo run --release --example forecast_service`

use wildfire::fire::IgnitionShape;
use wildfire::obs::{ChannelSource, ObsReport, ObservationOperator, StridedPsi};
use wildfire::service::{ForecastProduct, ForecastRequest, ForecastService, ServiceConfig};
use wildfire::sim::{DomainSpec, Scenario, SimulationBuilder};

/// A small domain (13×13 fire mesh over a 5×5×4 atmosphere) so the
/// service loop turns over many ticks quickly.
const DOMAIN: DomainSpec = DomainSpec {
    nx: 5,
    ny: 5,
    nz: 4,
    dx: 60.0,
    dy: 60.0,
    dz: 50.0,
    refinement: 3,
};

fn scenario(name: &str) -> Scenario {
    // Ignite explicitly: the builder's default circle is centered on the
    // PAPER domain, which lies outside this small one.
    SimulationBuilder::new()
        .name(name)
        .domain(DOMAIN)
        .ignite(IgnitionShape::Circle {
            center: DOMAIN.center(),
            radius: 30.0,
        })
        .into_scenario()
}

fn print_products(label: &str, products: &[ForecastProduct]) {
    for p in products {
        println!(
            "{:<12} {:>7.1} {:>7.1} {:>7} {:>12.0} {:>10.0} {:>9.3} {:>9}",
            label,
            p.horizon,
            p.time,
            p.members,
            p.mean_burned_area,
            p.mean_perimeter_length,
            p.max_spread_rate,
            p.reports_assimilated,
        );
    }
}

fn main() {
    // An offline "truth" run stands in for the real fire: a strided level
    // set operator samples it at two report times, and those reports are
    // fed to the service over a cross-thread channel.
    let truth_scenario = scenario("truth");
    let psi_op = StridedPsi::new(truth_scenario.model().expect("model").fire_grid, 3, 0.5);
    let mut truth = truth_scenario.build().expect("truth sim");
    let mut reports = Vec::new();
    for t_obs in [1.0, 2.0] {
        truth.run_until(t_obs, |_, _| {}).expect("truth run");
        reports.push(ObsReport {
            time: t_obs,
            stream: 0,
            data: psi_op.observe(&truth.state).expect("truth obs"),
        });
    }

    let service = ForecastService::start(ServiceConfig {
        threads: 2,
        tick: 1.0,
    });
    println!("forecast service up; submitting 4 requests");

    // Request 1: a 4-member data-driven forecast steered by the stream.
    let (obs_tx, obs_source) = ChannelSource::channel();
    let feeder = std::thread::spawn(move || {
        for r in reports {
            obs_tx.send(r).expect("service holds the receiver");
        }
    });
    feeder.join().expect("feeder exits");
    let streamed = service
        .submit(ForecastRequest {
            scenario: scenario("streamed"),
            n_members: 4,
            position_spread: 10.0,
            seed: 7,
            horizons: vec![2.0, 4.0],
            operators: vec![Box::new(psi_op)],
            source: Some(Box::new(obs_source)),
            filter: Default::default(),
        })
        .expect("submit streamed");

    // Requests 2–4: free-running forecasts sharing the same batch.
    let free: Vec<_> = [
        ("free-a", vec![3.0]),
        ("free-b", vec![2.0, 4.0]),
        ("free-c", vec![1.0]),
    ]
    .into_iter()
    .map(|(name, horizons)| {
        service
            .submit(ForecastRequest::free_run(scenario(name), horizons))
            .expect("submit free run")
    })
    .collect();

    let streamed_products = streamed.wait().expect("streamed request succeeds");
    let free_products: Vec<Vec<ForecastProduct>> = free
        .into_iter()
        .map(|h| h.wait().expect("free run succeeds"))
        .collect();

    println!(
        "\n{:<12} {:>7} {:>7} {:>7} {:>12} {:>10} {:>9} {:>9}",
        "request", "horizon", "t [s]", "members", "area [m2]", "perim [m]", "ros max", "reports"
    );
    print_products("streamed", &streamed_products);
    for (i, products) in free_products.iter().enumerate() {
        print_products(["free-a", "free-b", "free-c"][i], products);
    }

    assert_eq!(streamed_products.len(), 2, "one product per horizon");
    assert_eq!(
        streamed_products[1].reports_assimilated, 2,
        "both streamed reports assimilated"
    );
    let expected = [1usize, 2, 1];
    for (products, want) in free_products.iter().zip(expected) {
        assert_eq!(products.len(), want);
        assert_eq!(
            products[0].reports_assimilated, 0,
            "free runs never assimilate"
        );
    }
    assert!(
        streamed_products
            .iter()
            .chain(free_products.iter().flatten())
            .all(|p| p.mean_burned_area > 0.0 && p.mean_perimeter_length > 0.0),
        "every forecast must have burned"
    );

    service.shutdown();
    println!("\nforecast service ok");
}
