//! Batched multi-fire forecast: run eight ignition-perturbed variants of
//! the fig1 fireline through one [`SimBatch`] and print the per-fire
//! product table (burned area, perimeter, peak spread/updraft/power).
//!
//! The batch groups bitwise-compatible fires into one SoA level-set sweep
//! per step and work-steals the groups across the thread pool, so a small
//! probabilistic forecast like this costs much less than eight independent
//! runs — while every trajectory stays bit-identical to its independent
//! counterpart.
//!
//! Run with: `cargo run --release --example batch_forecast`

use wildfire::sim::batch::SimBatch;
use wildfire::sim::{perturb, registry, PerturbationSpec, SimulationBuilder};

fn main() {
    // Eight copies of the fig1 fireline scenario, each with its ignition
    // line displaced by a deterministic pseudo-random offset — a minimal
    // ensemble of "where might the fire actually be" hypotheses.
    let scenario = SimulationBuilder::from_scenario(
        registry::by_name("fig1-fireline").expect("registry scenario"),
    )
    .into_scenario();
    let spec = PerturbationSpec::position_only(30.0, 2026);
    let fires = perturb::perturbed_simulations(&scenario, &spec, 8).expect("fires build");

    let mut batch = SimBatch::new(4);
    for sim in fires {
        batch.push(sim);
    }
    println!(
        "advancing {} perturbed fires to t = 60 s in one batch...",
        batch.len()
    );
    batch.advance_to(60.0).expect("batch advance");

    println!(
        "\n{:<18} {:>6} {:>12} {:>10} {:>9} {:>9} {:>12}",
        "fire", "steps", "area [m2]", "perim [m]", "ros max", "w max", "P_sens [MW]"
    );
    let products = batch.products();
    for p in &products {
        println!(
            "{:<18} {:>6} {:>12.0} {:>10.0} {:>9.3} {:>9.3} {:>12.2}",
            p.name,
            p.coupled_steps,
            p.burned_area,
            p.perimeter_length,
            p.max_spread_rate,
            p.max_updraft,
            p.peak_sensible_power / 1e6,
        );
    }

    let areas: Vec<f64> = products.iter().map(|p| p.burned_area).collect();
    let mean = areas.iter().sum::<f64>() / areas.len() as f64;
    let min = areas.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = areas.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("\nburned area across the ensemble: mean {mean:.0} m2, range {min:.0}..{max:.0} m2");
    assert!(
        products
            .iter()
            .all(|p| p.coupled_steps > 0 && p.burned_area > 0.0),
        "every fire must have stepped and burned"
    );
    println!("batched forecast ok");
}
